"""Environment model for the simulated ROCm/HIP software stack.

On a real MI250X node the behaviour studied by the paper is steered by
environment variables: ``HSA_XNACK`` selects page-fault-and-migrate
semantics for managed memory (§II-C), ``HSA_ENABLE_SDMA`` /
``HSA_ENABLE_PEER_SDMA`` select the SDMA copy engines versus blit
kernels for ``hipMemcpy`` paths (§V-A2), ``HIP_VISIBLE_DEVICES``
restricts which GCDs a process sees (§IV-C), and
``MPICH_GPU_SUPPORT_ENABLED`` turns on GPU-aware MPI (§III).

The simulator reproduces those exact switches.  A
:class:`SimEnvironment` is an explicit object rather than global state,
so tests can run many configurations side by side; the
:func:`SimEnvironment.from_environ` constructor reads the real process
environment for users who want shell-level parity with the paper's
scripts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from .errors import ConfigurationError

_TRUE_STRINGS = {"1", "true", "yes", "on"}
_FALSE_STRINGS = {"0", "false", "no", "off"}


def _parse_bool(name: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUE_STRINGS:
        return True
    if lowered in _FALSE_STRINGS:
        return False
    raise ConfigurationError(f"{name}={raw!r} is not a boolean value")


def parse_visible_devices(raw: str, num_physical: int) -> tuple[int, ...]:
    """Parse a ``HIP_VISIBLE_DEVICES`` string into physical ordinals.

    The string is a comma-separated list of physical device indices; the
    *position* in the list becomes the logical device ordinal, exactly as
    the HIP runtime does.  Duplicates and out-of-range entries are
    rejected.
    """
    raw = raw.strip()
    if raw == "":
        return ()
    entries = [entry.strip() for entry in raw.split(",")]
    ordinals: list[int] = []
    for entry in entries:
        if not entry or not entry.lstrip("-").isdigit():
            raise ConfigurationError(
                f"HIP_VISIBLE_DEVICES entry {entry!r} is not an integer"
            )
        ordinal = int(entry)
        if ordinal < 0 or ordinal >= num_physical:
            raise ConfigurationError(
                f"HIP_VISIBLE_DEVICES entry {ordinal} outside [0, {num_physical})"
            )
        if ordinal in ordinals:
            raise ConfigurationError(
                f"HIP_VISIBLE_DEVICES entry {ordinal} listed twice"
            )
        ordinals.append(ordinal)
    return tuple(ordinals)


@dataclass(frozen=True)
class SimEnvironment:
    """Immutable snapshot of the runtime-steering environment.

    Attributes
    ----------
    xnack_enabled:
        ``HSA_XNACK=1``: GPU page faults on managed memory are resolved
        by migrating the page and retrying (paper §II-C).  When
        disabled, managed memory is accessed zero-copy over the
        interconnect instead.
    sdma_enabled:
        ``HSA_ENABLE_SDMA=1``: host-device ``hipMemcpy`` uses the SDMA
        engines; otherwise a blit copy kernel is used.
    peer_sdma_enabled:
        ``HSA_ENABLE_PEER_SDMA=1``: peer-to-peer ``hipMemcpyPeer`` uses
        the SDMA engines (the default the paper measures in Fig. 6c);
        setting it to 0 switches to blit kernels (§V-A2).
    visible_devices:
        Logical→physical GCD mapping from ``HIP_VISIBLE_DEVICES``;
        ``None`` means all devices visible in natural order.
    mpich_gpu_support:
        ``MPICH_GPU_SUPPORT_ENABLED=1``: the MPI layer is GPU-aware and
        may move device buffers directly (paper §III).
    """

    xnack_enabled: bool = False
    sdma_enabled: bool = True
    peer_sdma_enabled: bool = True
    visible_devices: tuple[int, ...] | None = None
    mpich_gpu_support: bool = True

    def with_(self, **changes: object) -> "SimEnvironment":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def map_logical_device(self, logical: int, num_physical: int) -> int:
        """Map a logical device ordinal to a physical GCD index."""
        if self.visible_devices is None:
            if 0 <= logical < num_physical:
                return logical
            raise ConfigurationError(
                f"logical device {logical} outside [0, {num_physical})"
            )
        try:
            return self.visible_devices[logical]
        except IndexError:
            raise ConfigurationError(
                f"logical device {logical} outside visible set "
                f"{self.visible_devices}"
            ) from None

    def num_visible_devices(self, num_physical: int) -> int:
        """Number of devices a process sees under this environment."""
        if self.visible_devices is None:
            return num_physical
        return len(self.visible_devices)

    @classmethod
    def from_environ(
        cls,
        environ: Mapping[str, str] | None = None,
        *,
        num_physical: int = 8,
    ) -> "SimEnvironment":
        """Build an environment from a mapping (default ``os.environ``)."""
        if environ is None:
            environ = os.environ
        kwargs: dict[str, object] = {}
        if "HSA_XNACK" in environ:
            kwargs["xnack_enabled"] = _parse_bool("HSA_XNACK", environ["HSA_XNACK"])
        if "HSA_ENABLE_SDMA" in environ:
            kwargs["sdma_enabled"] = _parse_bool(
                "HSA_ENABLE_SDMA", environ["HSA_ENABLE_SDMA"]
            )
        if "HSA_ENABLE_PEER_SDMA" in environ:
            kwargs["peer_sdma_enabled"] = _parse_bool(
                "HSA_ENABLE_PEER_SDMA", environ["HSA_ENABLE_PEER_SDMA"]
            )
        if "HIP_VISIBLE_DEVICES" in environ:
            kwargs["visible_devices"] = parse_visible_devices(
                environ["HIP_VISIBLE_DEVICES"], num_physical
            )
        if "MPICH_GPU_SUPPORT_ENABLED" in environ:
            kwargs["mpich_gpu_support"] = _parse_bool(
                "MPICH_GPU_SUPPORT_ENABLED", environ["MPICH_GPU_SUPPORT_ENABLED"]
            )
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ToolchainInfo:
    """Static description of the software stack the paper used (§III).

    Purely informational: reports embed it so outputs are traceable to
    the configuration they model.
    """

    rocm_version: str = "5.7.0"
    rccl_version: str = "2.17.1"
    mpi_implementation: str = "cray-mpich/8.1.28 (simulated)"
    osu_version: str = "7.4"
    compiler: str = "LLVM/Clang 17 (simulated)"
    extra: Mapping[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable toolchain summary for report headers."""
        lines = [
            f"ROCm {self.rocm_version}, RCCL {self.rccl_version}",
            f"MPI: {self.mpi_implementation}",
            f"OSU micro-benchmarks {self.osu_version}",
            f"Compiler: {self.compiler}",
        ]
        lines.extend(f"{key}: {value}" for key, value in self.extra.items())
        return "\n".join(lines)


DEFAULT_TOOLCHAIN = ToolchainInfo()


def spread_placement(num_gcds: int, total_gcds: int = 8) -> tuple[int, ...]:
    """GCD selection for the paper's *spread* strategy (§IV-C).

    Chooses at most one GCD per physical GPU before doubling up, i.e.
    even GCDs first: 1→(0,), 2→(0, 2), 4→(0, 2, 4, 6), 8→all.
    """
    if not 1 <= num_gcds <= total_gcds:
        raise ConfigurationError(
            f"num_gcds={num_gcds} outside [1, {total_gcds}]"
        )
    evens = [g for g in range(total_gcds) if g % 2 == 0]
    odds = [g for g in range(total_gcds) if g % 2 == 1]
    order = evens + odds
    return tuple(sorted(order[:num_gcds]))


def same_gpu_placement(num_gcds: int, total_gcds: int = 8) -> tuple[int, ...]:
    """GCD selection for the paper's *same GPU* strategy (§IV-C).

    Fills both GCDs of a physical GPU before moving to the next:
    2→(0, 1), 4→(0, 1, 2, 3).
    """
    if not 1 <= num_gcds <= total_gcds:
        raise ConfigurationError(
            f"num_gcds={num_gcds} outside [1, {total_gcds}]"
        )
    return tuple(range(num_gcds))


def placement_for_strategy(
    strategy: str, num_gcds: int, total_gcds: int = 8
) -> Sequence[int]:
    """Dispatch ``"spread"`` / ``"same_gpu"`` to the helpers above."""
    if strategy == "spread":
        return spread_placement(num_gcds, total_gcds)
    if strategy == "same_gpu":
        return same_gpu_placement(num_gcds, total_gcds)
    raise ConfigurationError(f"unknown placement strategy {strategy!r}")

"""Sim points: the unit of work of the sweep runner.

The paper's methodology is a grid of *independent* measurements —
every cell of the 8×8 P2P matrix, every (interface, size) pair of a
CommScope sweep, every (collective, partners) combination — each of
which stands up a fresh simulated node, runs one deterministic
discrete-event simulation, and returns a scalar (or a small result
object).  A :class:`SimPoint` captures one such cell as data:

- ``fn`` — the dotted path (``"pkg.module:callable"``) of a
  module-level measurement function, so the point can be pickled to a
  worker process and re-resolved there;
- ``params`` — the keyword arguments, stored as a sorted tuple of
  ``(name, value)`` pairs so points are immutable and their canonical
  form is order-independent;
- ``experiment_id`` / ``label`` — grouping metadata for reporting
  (deliberately *excluded* from the cache key, so two artifacts that
  measure the same point — e.g. Fig. 2's peaks over Fig. 3's sweep —
  share cached results).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..errors import BenchmarkError


def resolve_callable(path: str) -> Callable[..., Any]:
    """Import ``"pkg.module:callable"`` and return the callable."""
    module_name, sep, attr = path.partition(":")
    if not sep or not module_name or not attr:
        raise BenchmarkError(
            f"point fn {path!r} is not of the form 'pkg.module:callable'"
        )
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError:
        raise BenchmarkError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from None
    if not callable(fn):
        raise BenchmarkError(f"point fn {path!r} is not callable")
    return fn


@dataclass(frozen=True)
class SimPoint:
    """One independent simulation work unit of a sweep."""

    experiment_id: str
    label: str
    fn: str
    params: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def make(
        cls, experiment_id: str, label: str, fn: str, **kwargs: Any
    ) -> "SimPoint":
        """Build a point, dropping ``None``-valued kwargs.

        ``None`` always means "use the measurement function's default"
        in this codebase, so dropping it keeps cache keys identical
        whether a caller omitted the argument or passed ``None``.
        """
        params = tuple(
            sorted((k, v) for k, v in kwargs.items() if v is not None)
        )
        return cls(experiment_id, label, fn, params)

    @property
    def kwargs(self) -> dict[str, Any]:
        """The keyword arguments as a plain dict."""
        return dict(self.params)

    def execute(self) -> Any:
        """Resolve ``fn`` and run the measurement in this process."""
        return resolve_callable(self.fn)(**self.kwargs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.experiment_id}/{self.label}"


def execute_point(point: SimPoint) -> Any:
    """Module-level trampoline for process-pool workers (picklable)."""
    return point.execute()


def execute_point_observed(point: SimPoint) -> tuple[Any, dict[str, Any]]:
    """Run a point under an ambient metrics capture.

    Returns ``(value, metrics snapshot)``.  Used by the runner's
    ``capture_metrics`` mode: the snapshot is a plain JSON-able dict,
    so it pickles cheaply back from pool workers, where the parent's
    ambient context does not exist.  Tracing stays off — per-point
    timelines belong to ``repro trace``, not sweeps.
    """
    from ..obs.capture import capture

    with capture(trace=False) as ctx:
        value = point.execute()
    return value, ctx.metrics.snapshot()


def execute_point_spanned(
    point: SimPoint,
) -> tuple[Any, dict[str, Any], list[dict[str, Any]]]:
    """Run a point under an ambient metrics **and** span capture.

    Returns ``(value, metrics snapshot, span dicts)`` — all plain
    JSON-able data, so the triple pickles cheaply back from pool
    workers.  Used by the runner's ``capture_spans`` mode (reports and
    ``repro explain``); the per-point span sets are merged into one
    causal timeline by :func:`repro.obs.spans.merge_point_spans`.
    """
    from ..obs.capture import capture

    with capture(trace=False, spans=True) as ctx:
        value = point.execute()
    return value, ctx.metrics.snapshot(), ctx.spans.as_dicts()


def execute_point_in_context(
    point: SimPoint,
    scenario: Any = None,
    topology: Any = None,
    algorithm: Any = None,
    mode: str = "plain",
) -> Any:
    """Run a point under ambient fault / topology / algorithm contexts.

    ``scenario`` is a :class:`~repro.faults.FaultScenario`; ``topology``
    a :class:`~repro.topology.node.NodeTopology` (e.g. loaded from a
    ``--topology`` file) every node built inside the point adopts;
    ``algorithm`` a collective-algorithm name every communicator built
    inside the point adopts.  ``mode`` selects the capture wrapper:
    ``"plain"``, ``"metrics"`` or ``"spans"``, with the same return
    shapes as the matching bare trampolines.  Module-level and driven
    by :func:`functools.partial` so pool workers can unpickle it; the
    contexts ride along as pickled data.
    """
    from contextlib import ExitStack

    with ExitStack() as stack:
        if scenario is not None:
            from ..faults.context import install as install_faults

            stack.enter_context(install_faults(scenario))
        if topology is not None:
            from ..topology.context import install as install_topology

            stack.enter_context(install_topology(topology))
        if algorithm is not None:
            from ..rccl.algorithms import install_algorithm

            stack.enter_context(install_algorithm(algorithm))
        if mode == "spans":
            return execute_point_spanned(point)
        if mode == "metrics":
            return execute_point_observed(point)
        return execute_point(point)


def execute_point_with_faults(
    point: SimPoint, scenario: Any = None, mode: str = "plain"
) -> Any:
    """Back-compat alias: faults-only contextual execution."""
    return execute_point_in_context(point, scenario=scenario, mode=mode)

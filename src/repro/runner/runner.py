"""The sweep runner: fan sim points out over worker processes.

The measurement grid is embarrassingly parallel — every
:class:`~repro.runner.points.SimPoint` builds its own simulated node —
so the runner's job is bookkeeping, not synchronization:

1. probe the :class:`~repro.runner.cache.ResultCache` for every point;
2. execute the misses, either in-process (``jobs=1``) or over a
   ``ProcessPoolExecutor`` (``jobs>1``), falling back to serial
   execution if a pool cannot be started (restricted sandboxes);
3. store fresh outputs and return them **in point order**, so the
   assembled :class:`~repro.core.experiment.ExperimentResult` is
   bit-identical regardless of ``jobs`` (enforced by the differential
   tests in ``tests/runner/``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .cache import ResultCache
from .points import (
    SimPoint,
    execute_point,
    execute_point_in_context,
    execute_point_observed,
    execute_point_spanned,
    execute_point_with_faults,
)


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the *machine*, not the cgroup/affinity
    mask — in a container pinned to 2 of 64 cores it answers 64, and
    ``jobs="auto"`` would oversubscribe 32× (exactly the environment a
    long-lived ``repro serve`` runs in).  ``os.sched_getaffinity(0)``
    reports the schedulable set; fall back to ``cpu_count`` on
    platforms without it (macOS, Windows).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            mask = getaffinity(0)
        except OSError:  # pragma: no cover - exotic kernels
            mask = None
        if mask:
            return len(mask)
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a ``--jobs`` value: ``None``→1, ``0``/"auto"→cores."""
    if jobs is None:
        return 1
    if jobs == "auto" or jobs == 0:
        return available_cpus()
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass
class RunnerStats:
    """Work accounting of one :class:`SweepRunner`.

    Cache counters are **this runner's own** hits/misses — deltas of
    the (possibly shared) :class:`~repro.runner.cache.CacheStats`
    observed around each ``run_points`` call, not the cache's lifetime
    totals.  ``metrics`` holds the merged per-point metrics snapshot
    when the runner was built with ``capture_metrics=True``; ``spans``
    holds the merged causal-span timeline (per-point span sets laid
    end-to-end in point order under synthetic point roots) when built
    with ``capture_spans=True``.
    """

    points: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    uncacheable: int = 0
    jobs: int = 1
    parallel_fallbacks: int = 0
    pool_crashes: int = 0
    wall_seconds: float = 0.0
    metrics: dict[str, Any] | None = None
    spans: list[dict[str, Any]] | None = None

    def as_dict(self) -> dict[str, Any]:
        """The counters as a plain dict (for perf reports)."""
        out = {
            "points": self.points,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "uncacheable": self.uncacheable,
            "jobs": self.jobs,
            "parallel_fallbacks": self.parallel_fallbacks,
            "pool_crashes": self.pool_crashes,
            "wall_seconds": self.wall_seconds,
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if self.spans is not None:
            out["span_count"] = len(self.spans)
        return out

    def describe(self) -> str:
        """One-line ``--cache-stats`` summary."""
        return (
            f"sweep-runner: {self.points} points, {self.executed} executed "
            f"({self.jobs} job(s)), cache {self.cache_hits} hit(s) / "
            f"{self.cache_misses} miss(es) / {self.uncacheable} "
            f"uncacheable, {self.wall_seconds:.2f}s"
        )


class SweepRunner:
    """Executes sim-point grids with caching and optional parallelism.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs in-process, ``0`` or
        ``"auto"`` uses all cores.
    cache:
        A :class:`ResultCache` to use, or ``None`` to build one from
        ``cache_dir`` (``use_cache=False`` disables caching entirely).
    faults:
        Optional :class:`~repro.faults.FaultScenario` injected into
        every point of the sweep (fault-sensitivity runs).  The
        scenario's fingerprint is folded into each point's cache key,
        so faulted and healthy results never collide and two sweeps
        under the same scenario share the cache.
    topology:
        Optional :class:`~repro.topology.node.NodeTopology` every node
        built inside the sweep adopts (``--topology FILE`` runs).  Its
        structural fingerprint is folded into each point's cache key,
        so a file-defined topology keys the cache exactly like the
        fingerprint-identical code preset.
    algorithm:
        Optional collective-algorithm name (see
        :data:`~repro.rccl.algorithms.RCCL_ALGORITHMS`, or ``"auto"``)
        every communicator built inside the sweep adopts; folded into
        the cache key as a plain string.
    """

    def __init__(
        self,
        jobs: int | str | None = 1,
        *,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        cache_dir: str | None = None,
        capture_metrics: bool = False,
        capture_spans: bool = False,
        faults: Any = None,
        topology: Any = None,
        algorithm: str | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if cache is None and use_cache:
            cache = ResultCache(cache_dir)
        self.cache = cache if use_cache else None
        # Span capture also collects metrics (the spanned trampoline
        # captures both — reports want channel utilization alongside
        # the blame table, and one capture context costs the same).
        self.capture_metrics = capture_metrics or capture_spans
        self.capture_spans = capture_spans
        # An empty scenario injects nothing, so it is equivalent to
        # (and cache-compatible with) no scenario at all.
        self.faults = faults if faults else None
        self.topology = topology
        if algorithm is not None:
            from ..rccl.algorithms import check_algorithm

            check_algorithm(algorithm)
        self.algorithm = algorithm
        self.stats = RunnerStats(jobs=self.jobs)
        # (label, span dicts) per executed point, in point order, across
        # all run_points calls — remerged after each batch so span ids
        # and the synthetic timeline stay globally consistent.
        self._span_points: list[tuple[str, list[dict[str, Any]]]] = []

    @classmethod
    def from_config(
        cls,
        config: Any,
        *,
        faults: Any = None,
        topology: Any = None,
        algorithm: str | None = None,
    ) -> "SweepRunner":
        """Build a runner from a :class:`~repro.configs.RunnerConfig`."""
        return cls(
            config.jobs,
            use_cache=config.cache,
            cache_dir=config.cache_dir,
            capture_metrics=config.capture_metrics,
            capture_spans=config.capture_spans,
            faults=faults,
            topology=topology,
            algorithm=algorithm,
        )

    # -- point execution ------------------------------------------------

    def run_points(self, points: Sequence[SimPoint]) -> list[Any]:
        """Execute a grid; returns outputs in point order."""
        points = list(points)
        started = time.perf_counter()
        # Snapshot the cache counters so the stats report *this
        # runner's* work even when the cache object is shared across
        # runners or run_many calls (lifetime totals would otherwise
        # leak into --cache-stats).
        if self.cache is not None:
            hits_before = self.cache.stats.hits
            misses_before = self.cache.stats.misses
            uncacheable_before = self.cache.stats.uncacheable
        outputs: list[Any] = [None] * len(points)
        keys: list[str | None] = [None] * len(points)
        pending: list[int] = []
        for index, point in enumerate(points):
            key = (
                self.cache.key_for(self._keyed_point(point))
                if self.cache is not None
                else None
            )
            keys[index] = key
            if key is not None:
                hit, value = self.cache.load(key)
                if hit:
                    outputs[index] = value
                    continue
            pending.append(index)
        if pending:
            fresh = self._execute([points[i] for i in pending])
            for index, value in zip(pending, fresh):
                outputs[index] = value
                if self.cache is not None and keys[index] is not None:
                    self.cache.store(keys[index], value)
        self.stats.points += len(points)
        self.stats.executed += len(pending)
        if self.cache is not None:
            self.stats.cache_hits += self.cache.stats.hits - hits_before
            self.stats.cache_misses += self.cache.stats.misses - misses_before
            self.stats.uncacheable += (
                self.cache.stats.uncacheable - uncacheable_before
            )
        self.stats.wall_seconds += time.perf_counter() - started
        return outputs

    def _keyed_point(self, point: SimPoint) -> SimPoint:
        """The point as cached: params plus the ambient-context keys.

        The fault scenario, topology and algorithm are appended to
        ``params`` for *keying only* (the executed point is untouched —
        the contexts reach the measurement via ambient installs, not
        kwargs); ``canonical_token`` folds scenario and topology in
        through their ``fingerprint()``, so a topology loaded from a
        file keys identically to the fingerprint-equal code preset.
        """
        extra: tuple[tuple[str, Any], ...] = ()
        if self.faults is not None:
            extra += (("__faults__", self.faults),)
        if self.topology is not None:
            extra += (("__topology__", self.topology),)
        if self.algorithm is not None:
            extra += (("__algorithm__", self.algorithm),)
        if not extra:
            return point
        return SimPoint(
            point.experiment_id,
            point.label,
            point.fn,
            point.params + extra,
        )

    def _execute(self, points: list[SimPoint]) -> list[Any]:
        if self.capture_spans:
            trampoline = execute_point_spanned
        elif self.capture_metrics:
            trampoline = execute_point_observed
        else:
            trampoline = execute_point
        if (
            self.faults is not None
            or self.topology is not None
            or self.algorithm is not None
        ):
            from functools import partial

            mode = (
                "spans"
                if self.capture_spans
                else "metrics" if self.capture_metrics else "plain"
            )
            trampoline = partial(
                execute_point_in_context,
                scenario=self.faults,
                topology=self.topology,
                algorithm=self.algorithm,
                mode=mode,
            )
        if self.jobs > 1 and len(points) > 1:
            try:
                results = self._execute_parallel(points, trampoline)
            except (OSError, NotImplementedError, ImportError):
                # No usable multiprocessing (sandboxes, missing /dev/shm):
                # the serial path produces identical results, just slower.
                self.stats.parallel_fallbacks += 1
                results = [trampoline(point) for point in points]
        else:
            results = [trampoline(point) for point in points]
        if not self.capture_metrics:
            return results
        from ..obs.metrics import merge_snapshots

        values: list[Any] = []
        for point, result in zip(points, results):
            if self.capture_spans:
                value, snapshot, spans = result
                self._span_points.append((str(point), spans))
            else:
                value, snapshot = result
            values.append(value)
            self.stats.metrics = merge_snapshots(self.stats.metrics, snapshot)
        if self.capture_spans:
            from ..obs.spans import merge_point_spans

            self.stats.spans = merge_point_spans(self._span_points)
        return values

    def _execute_parallel(
        self, points: list[SimPoint], trampoline: Any = execute_point
    ) -> list[Any]:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        workers = min(self.jobs, len(points))
        chunksize = max(1, len(points) // (workers * 4))
        results: list[Any] = []
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # ``map`` preserves submission order, which is point
                # order; consuming it incrementally keeps every result
                # that completed before a worker crash.
                for value in pool.map(
                    trampoline, points, chunksize=chunksize
                ):
                    results.append(value)
        except BrokenProcessPool:
            # A worker died mid-sweep (OOM kill, segfault in a native
            # extension, container eviction).  The pool is poisoned,
            # but the unfinished points are still perfectly runnable —
            # finish them serially instead of surfacing a raw
            # BrokenProcessPool for the whole sweep.  If serial
            # execution fails too, *that* exception propagates.
            self.stats.pool_crashes += 1
            results.extend(
                trampoline(point) for point in points[len(results):]
            )
        return results

    # -- experiment-level API -------------------------------------------

    def _ambient(self):
        """Parent-process ambient installs for topology/algorithm.

        Point execution re-installs the contexts inside each worker,
        but point *decomposition* and output *merging* run in the
        parent; any node they build (e.g. a figure driver probing the
        topology while laying out its grid) must see the same ambient
        state the workers do.
        """
        from contextlib import ExitStack

        stack = ExitStack()
        if self.topology is not None:
            from ..topology.context import install as install_topology

            stack.enter_context(install_topology(self.topology))
        if self.algorithm is not None:
            from ..rccl.algorithms import install_algorithm

            stack.enter_context(install_algorithm(self.algorithm))
        return stack

    def run_experiment(self, experiment_id: str, **params: Any):
        """Run one artifact through its sweep decomposition."""
        from .. import figures

        started = time.perf_counter()
        with self._ambient():
            points = figures.sweep_points(experiment_id, **params)
            outputs = self.run_points(points)
            result = figures.merge_outputs(
                experiment_id, points, outputs, **params
            )
        result.wall_seconds = time.perf_counter() - started
        return result

    def run_many(
        self, experiment_ids: Sequence[str], **params: Any
    ) -> dict[str, Any]:
        """Run several artifacts as **one** flattened point grid.

        Flattening lets the pool balance points across experiments
        instead of draining one artifact at a time; results come back
        keyed by experiment id, in the requested order.  Each result's
        ``wall_seconds`` is the batch wall time apportioned by point
        count.
        """
        from .. import figures

        started = time.perf_counter()
        ids = list(dict.fromkeys(experiment_ids))
        with self._ambient():
            decompositions = {
                eid: figures.sweep_points(eid, **params) for eid in ids
            }
            flat: list[SimPoint] = []
            for eid in ids:
                flat.extend(decompositions[eid])
            outputs = self.run_points(flat)
            elapsed = time.perf_counter() - started
            total = max(1, len(flat))
            results: dict[str, Any] = {}
            cursor = 0
            for eid in ids:
                points = decompositions[eid]
                chunk = outputs[cursor : cursor + len(points)]
                cursor += len(points)
                result = figures.merge_outputs(eid, points, chunk, **params)
                result.wall_seconds = elapsed * len(points) / total
                results[eid] = result
        return results

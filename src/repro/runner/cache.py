"""Content-addressed on-disk result cache.

Entries live under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``)
as ``objects/<k[:2]>/<key>.pkl``; the key (see
:mod:`repro.runner.keys`) already encodes the point parameters,
calibration/topology fingerprints and the package version, so the
store itself is a dumb immutable blob space — invalidation is simply
"a changed input hashes to a different key".  Writes are atomic
(tempfile + ``os.replace``), so concurrent runners sharing one cache
directory can never observe a torn entry; corrupt or unreadable
entries are deleted and treated as misses.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from .keys import UncacheableValueError, point_key
from .points import SimPoint

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Age (seconds) past which an abandoned ``.tmp-*`` file is considered
#: dead and swept by :meth:`ResultCache.clear`.  Younger temporaries
#: may belong to an in-flight store on another thread or process.
STALE_TMP_SECONDS = 3600.0


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def _package_version() -> str:
    from .. import __version__

    return __version__


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    uncacheable: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for perf reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "errors": self.errors,
        }


class ResultCache:
    """Content-addressed pickle store for sim-point outputs."""

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        version: str | None = None,
    ) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self.version = version if version is not None else _package_version()
        self.stats = CacheStats()

    # -- keys -----------------------------------------------------------

    def key_for(self, point: SimPoint) -> str | None:
        """The point's cache key, or ``None`` if it is uncacheable."""
        try:
            return point_key(point, version=self.version)
        except UncacheableValueError:
            self.stats.uncacheable += 1
            return None

    # -- storage --------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / "objects" / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            value = entry["value"]
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except (
            OSError,
            EOFError,
            KeyError,
            IndexError,
            TypeError,  # entry pickled against a changed class signature
            ValueError,
            pickle.UnpicklingError,
            AttributeError,  # entry pickled against a renamed class
            ImportError,  # entry pickled against a removed module
            MemoryError,
        ):
            # Corrupt / truncated / incompatible entry: drop and
            # recompute.  Deliberately *not* a bare ``except Exception``
            # — ``KeyboardInterrupt``/``SystemExit`` (BaseExceptions)
            # and genuine programming errors must propagate instead of
            # being miscounted as cache corruption.
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.stats.hits += 1
        return True, value

    def store(self, key: str, value: Any) -> None:
        """Atomically persist one point output."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            {"key": key, "version": self.version, "value": value},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except FileNotFoundError:
            # A concurrent clear() swept our temp between write and
            # publish.  The cache only promises recomputability, so a
            # lost store is harmless — never crash the runner for it.
            self.stats.errors += 1
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # -- maintenance ----------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """Every *committed* entry file currently in the cache.

        In-flight temporaries (``.tmp-*.pkl`` left by :meth:`store`,
        possibly stale after a killed writer) are excluded —
        ``pathlib``'s glob matches dotfiles, so filtering is explicit.
        Directories vanishing mid-scan (a concurrent :meth:`clear`)
        are tolerated.
        """
        objects = self.directory / "objects"
        if not objects.is_dir():
            return
        try:
            found = sorted(objects.glob("*/*.pkl"))
        except OSError:
            return
        for path in found:
            if not path.name.startswith("."):
                yield path

    def entry_count(self) -> int:
        """Number of cached point outputs."""
        return sum(1 for _ in self.entries())

    def total_bytes(self) -> int:
        """On-disk size of all entries.

        Entries deleted by a concurrent runner between listing and
        ``stat`` simply don't count (the cache promises concurrent
        runners are safe).
        """
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Also sweeps stale ``.tmp-*`` files abandoned by writers that
        died between ``mkstemp`` and ``os.replace`` (they are not
        counted in the return value).  Only temporaries older than
        :data:`STALE_TMP_SECONDS` are swept — a younger one probably
        belongs to an *in-flight* store on another thread/process, and
        deleting it from under the writer would turn its publish into
        an error.  Files already removed by a concurrent clear are
        skipped silently.
        """
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        objects = self.directory / "objects"
        if objects.is_dir():
            try:
                stale = list(objects.glob("*/.tmp-*"))
            except OSError:
                stale = []
            cutoff = time.time() - STALE_TMP_SECONDS
            for path in stale:
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                except OSError:
                    pass
        return removed

    def describe(self) -> str:
        """One-paragraph summary for ``repro cache show``."""
        count = self.entry_count()
        size = self.total_bytes()
        return (
            f"cache directory: {self.directory}\n"
            f"package version: {self.version}\n"
            f"entries: {count} ({size / 1e6:.2f} MB)"
        )

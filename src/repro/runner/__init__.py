"""Parallel sweep execution with content-addressed result caching.

The reproduction's measurement grid — size sweeps, the 8×8 P2P
matrix, collective scaling curves — is a set of *independent*
deterministic simulations.  This subsystem exploits that twice over:

- :class:`SweepRunner` fans :class:`SimPoint` work units out over a
  process pool (``jobs=N``) with deterministic ordering, so parallel
  output is bit-identical to serial;
- :class:`ResultCache` memoizes each point on disk, keyed by a
  content hash of its parameters, calibration fingerprint, topology
  fingerprint and package version — a warm ``repro run all`` never
  recomputes an unchanged point.

Entry points: ``repro run/methodology/validate --jobs N``,
``Session.runner()``, or the sweep functions' ``runner=`` parameter.
"""

from __future__ import annotations

from typing import Any, Sequence

from .cache import CACHE_DIR_ENV, CacheStats, ResultCache, default_cache_dir
from .keys import UncacheableValueError, canonical_token, point_key
from .points import (
    SimPoint,
    execute_point,
    execute_point_observed,
    execute_point_with_faults,
    resolve_callable,
)
from .runner import RunnerStats, SweepRunner, resolve_jobs


def execute_points(
    points: Sequence[SimPoint], runner: SweepRunner | None = None
) -> list[Any]:
    """Execute a point grid serially, or via ``runner`` when given.

    The bench-suite sweep functions call this so their serial path and
    their runner path share one decomposition — which is what makes
    "parallel ≡ serial" checkable rather than hopeful.
    """
    if runner is None:
        return [point.execute() for point in points]
    return runner.run_points(points)


__all__ = [
    "SweepRunner",
    "SimPoint",
    "ResultCache",
    "RunnerStats",
    "CacheStats",
    "CACHE_DIR_ENV",
    "UncacheableValueError",
    "canonical_token",
    "default_cache_dir",
    "execute_point",
    "execute_point_observed",
    "execute_point_with_faults",
    "execute_points",
    "point_key",
    "resolve_callable",
    "resolve_jobs",
]

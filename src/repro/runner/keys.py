"""Content-addressed cache keys for sim points.

A point's key is a SHA-256 over a canonical JSON encoding of
*everything that determines its output*: the measurement function's
dotted path, its parameters (with topologies and calibration profiles
reduced to their content fingerprints), and the package version (the
model code itself).  Grouping metadata (``experiment_id``, ``label``)
is excluded, so identical measurements reached from different
artifacts share one cache entry.

Floats are encoded via :meth:`float.hex` — the key changes iff the
bit pattern of an input changes, matching the simulator's bit-exact
determinism guarantee.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Mapping

from .points import SimPoint

#: Bumped when the canonical encoding itself changes.
KEY_SCHEMA = "repro-point/1"


class UncacheableValueError(TypeError):
    """A point parameter has no stable canonical form."""


def canonical_token(value: Any) -> Any:
    """JSON-serializable canonical form of one parameter value.

    Raises :class:`UncacheableValueError` for values without a stable
    content identity; the runner then computes such points without
    consulting the cache instead of risking a wrong hit.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ["float", value.hex()]
    if isinstance(value, (list, tuple)):
        return ["seq", [canonical_token(item) for item in value]]
    if isinstance(value, Mapping):
        items = [
            [canonical_token(key), canonical_token(value[key])]
            for key in value
        ]
        items.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return ["map", items]
    if isinstance(value, enum.Enum):
        return ["enum", type(value).__qualname__, value.name]
    fingerprint = getattr(value, "fingerprint", None)
    if callable(fingerprint):
        # NodeTopology, CalibrationProfile — content-hashed structures.
        return ["fingerprint", type(value).__qualname__, fingerprint()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # SimEnvironment and friends: canonicalize field by field.
        fields = [
            [f.name, canonical_token(getattr(value, f.name))]
            for f in sorted(dataclasses.fields(value), key=lambda f: f.name)
        ]
        return ["dataclass", type(value).__qualname__, fields]
    raise UncacheableValueError(
        f"no canonical form for {type(value).__qualname__!r} value {value!r}"
    )


def point_key(point: SimPoint, *, version: str) -> str:
    """Content-addressed cache key (SHA-256 hex) of one point.

    Raises :class:`UncacheableValueError` when any parameter cannot be
    canonicalized.
    """
    payload = json.dumps(
        [
            KEY_SCHEMA,
            version,
            point.fn,
            [[name, canonical_token(value)] for name, value in point.params],
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()

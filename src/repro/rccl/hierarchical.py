"""Hierarchical ring allreduce for multi-node (NIC-bridged) topologies.

On a cluster the flat greedy ring is forced to relay every inter-node
segment over CPU+NIC hops, so the whole ring crawls at NIC pace.  The
hierarchical pattern — what RCCL does when ``NCCL_CROSS_NIC``-style
rails are available — keeps the slow stage short instead:

1. **Intra-island reduce-scatter** — every xGMI island (= node; see
   :func:`repro.rccl.algorithms.xgmi_islands`) runs a ring
   reduce-scatter concurrently over its fast xGMI mesh.
2. **Inter-island leader allreduce** — the smallest member of each
   island joins a leader ring whose segments cross the NIC rails; a
   ring allreduce over the leaders combines the per-island partials.
3. **Intra-island allgather** — each island fans the combined result
   back out over xGMI, again concurrently across islands.

Only phase 2 touches the NICs, and it moves ``S/L``-byte chunks across
``L`` leaders instead of dragging all ``8L`` members through NIC-paced
ring steps.
"""

from __future__ import annotations

from typing import Generator

from .algorithms import xgmi_islands
from .collectives import (
    BufferMap,
    _apply_reduction,
    _check,
    _check_buffers,
    allgather,
    allreduce,
    reduce_scatter,
)
from .communicator import RcclCommunicator


def _island_communicators(
    comm: RcclCommunicator, islands: "list[list[int]]"
) -> "list[RcclCommunicator]":
    """One sub-communicator per island, sharing the parent's node."""
    return [
        RcclCommunicator(
            node=comm.node, gcds=island, env=comm.env, retry=comm.retry
        )
        for island in islands
    ]


def hierarchical_allreduce(
    comm: RcclCommunicator,
    nbytes: int,
    sendbufs: "BufferMap | None" = None,
    recvbufs: "BufferMap | None" = None,
) -> Generator:
    """Three-phase hierarchical allreduce (see module docstring).

    Falls back to the flat ring allreduce when the members share a
    single xGMI island — on one node the hierarchy has nothing to
    amortise and the flat ring is the paper-measured pattern.
    """
    _check(comm, nbytes)
    _check_buffers(comm, sendbufs, nbytes, "send")
    _check_buffers(comm, recvbufs, nbytes, "recv")
    islands = xgmi_islands(comm.node.topology, comm.gcds)
    if len(islands) < 2:
        yield from allreduce(comm, nbytes, sendbufs, recvbufs)
        return

    engine = comm.engine
    start = engine.now
    spans = comm.node.spans
    collective_span = (
        spans.begin(
            "rccl",
            "rccl:hierarchical_allreduce",
            start=start,
            islands=len(islands),
            bytes=nbytes,
        )
        if spans
        else None
    )
    sub_comms = _island_communicators(comm, islands)
    leaders = [island[0] for island in islands]
    leader_comm = RcclCommunicator(
        node=comm.node, gcds=leaders, env=comm.env, retry=comm.retry
    )

    # Phase 1: concurrent per-island reduce-scatter over xGMI.
    yield engine.all_of(
        [
            engine.process(reduce_scatter(sub, nbytes))
            for sub in sub_comms
        ]
    )
    # Phase 2: leader ring allreduce — the only NIC-crossing phase.
    yield from allreduce(leader_comm, nbytes)
    # Phase 3: concurrent per-island allgather of the combined result.
    yield engine.all_of(
        [engine.process(allgather(sub, nbytes)) for sub in sub_comms]
    )

    if collective_span is not None:
        spans.finish(collective_span, engine.now)
    tracer = comm.node.tracer
    if tracer.enabled:
        tracer.record(
            start,
            engine.now,
            "rccl",
            "hierarchical_allreduce",
            islands=len(islands),
            bytes=nbytes,
        )
    metrics = comm.node.metrics
    if metrics:
        metrics.counter("rccl/hierarchical_allreduce").inc()
    _apply_reduction(sendbufs, recvbufs, nbytes)

"""Ring construction over the xGMI topology.

Two search strategies:

- :func:`build_greedy_ring` — what the simulator uses by default,
  modelling RCCL's heuristic pattern search: starting from the lowest
  member, repeatedly hop to the unvisited member behind the *widest*
  direct link (ties to the lowest index); members with no direct link
  get a *relayed* segment routed over the fabric.  On the Fig. 1
  topology this finds the perfect all-direct ring for all 8 GCDs
  (0-1-3-2-4-5-7-6) but leaves a relayed segment for the 7-GCD subset
  — the mechanism behind the Fig. 12 latency drop from 7 to 8 threads.
- :func:`build_optimal_ring` — exhaustive search minimising relays
  then maximising the bottleneck; used by the ablation benchmark to
  quantify what the heuristic costs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..errors import RcclError, RoutingError, TopologyError
from ..topology.node import NodeTopology
from ..topology.routing import Route, bandwidth_maximizing_path


@dataclass(frozen=True)
class RingSegment:
    """One directed hop of the ring: member → next member.

    ``route`` is the fabric path; ``is_relayed`` when it crosses an
    intermediate die (no direct link between the members).
    """

    src: int
    dst: int
    route: Route

    @property
    def is_relayed(self) -> bool:
        """True when the segment crosses an intermediate die."""
        return self.route.num_hops > 1

    @property
    def bottleneck_capacity(self) -> float:
        """Narrowest per-direction link capacity on the route."""
        return self.route.bottleneck_capacity


@dataclass(frozen=True)
class Ring:
    """A closed ring over the communicator members."""

    order: tuple[int, ...]
    segments: tuple[RingSegment, ...]

    @property
    def size(self) -> int:
        """Number of ring members."""
        return len(self.order)

    @property
    def num_relayed(self) -> int:
        """Count of relayed segments (the Fig. 12 penalty)."""
        return sum(1 for s in self.segments if s.is_relayed)

    @property
    def bottleneck_capacity(self) -> float:
        """Narrowest segment bottleneck of the whole ring."""
        return min(s.bottleneck_capacity for s in self.segments)

    def segment_from(self, member: int) -> RingSegment:
        """The outgoing segment of a member."""
        for segment in self.segments:
            if segment.src == member:
                return segment
        raise RcclError(f"GCD {member} is not a ring member")

    def next_member(self, member: int) -> int:
        """Successor of a member along the ring."""
        return self.segment_from(member).dst

    def describe(self) -> str:
        """Compact rendering; ``~>`` marks relayed segments."""
        parts = []
        for segment in self.segments:
            arrow = "~>" if segment.is_relayed else "->"
            parts.append(f"{segment.src}{arrow}")
        return "".join(parts) + str(self.order[0])


def _segments_for_order(
    topology: NodeTopology,
    order: Sequence[int],
    avoid_links: "frozenset[str] | set[str] | None" = None,
) -> tuple[RingSegment, ...]:
    segments = []
    for i, src in enumerate(order):
        dst = order[(i + 1) % len(order)]
        try:
            route = bandwidth_maximizing_path(
                topology, src, dst, avoid=avoid_links
            )
        except RoutingError as exc:
            # The avoid set (failed links) exhausted every path between
            # two adjacent members: surface a communicator-level error
            # rather than a raw routing failure from deep inside the
            # builder — callers handle RcclError, not RoutingError.
            raise RcclError(
                f"no usable path between ring members {src} and {dst}: "
                f"{exc}"
            ) from exc
        segments.append(RingSegment(src, dst, route))
    return tuple(segments)


def _validate_members(topology: NodeTopology, members: Sequence[int]) -> list[int]:
    members = list(members)
    if len(members) < 2:
        raise RcclError("a ring needs at least two members")
    if len(set(members)) != len(members):
        raise RcclError("duplicate GCDs in communicator")
    for member in members:
        try:
            topology.gcd(member)
        except TopologyError as exc:
            # Only the "no such GCD" lookup failure becomes an
            # RcclError; anything else (e.g. AttributeError from a
            # malformed topology object) is a programming error and
            # must propagate unmasked.
            raise RcclError(f"GCD {member} not in topology: {exc}") from exc
    return members


def build_greedy_ring(
    topology: NodeTopology,
    members: Sequence[int],
    *,
    avoid_links: "frozenset[str] | set[str] | None" = None,
) -> Ring:
    """RCCL-style heuristic: widest direct link first, relay otherwise.

    ``avoid_links`` (link names, from
    :meth:`HardwareNode.failed_links`) excludes dead links: they are
    not candidates for direct hops and segment routes detour around
    them, so rebuilding a ring after a ``LinkFail`` yields a ring that
    relays around the dead link exactly like RCCL re-running its
    pattern search on the degraded topology.
    """
    members = _validate_members(topology, members)
    start = min(members)
    order = [start]
    unvisited = set(members) - {start}
    current = start
    while unvisited:
        direct = [
            (link.tier.peak_unidirectional, -candidate, candidate)
            for candidate in unvisited
            for link in [topology.link_between(current, candidate)]
            if link is not None
            and not (avoid_links and link.name in avoid_links)
        ]
        if direct:
            _, _, chosen = max(direct)
        else:
            # No direct link: relay to the lowest-index remaining member.
            chosen = min(unvisited)
        order.append(chosen)
        unvisited.discard(chosen)
        current = chosen
    return Ring(
        tuple(order), _segments_for_order(topology, order, avoid_links)
    )


def build_optimal_ring(topology: NodeTopology, members: Sequence[int]) -> Ring:
    """Exhaustive search: fewest relays, then widest bottleneck.

    Factorial in the member count — fine for ≤ 8 GCDs.  Exists to
    quantify the cost of the greedy heuristic (ablation benchmark).
    """
    members = _validate_members(topology, members)
    start = members[0]
    best_ring: Ring | None = None
    best_key: tuple[int, float, tuple[int, ...]] | None = None
    rest = [m for m in sorted(members) if m != start]
    for perm in itertools.permutations(rest):
        order = (start, *perm)
        segments = _segments_for_order(topology, order)
        ring = Ring(order, segments)
        key = (ring.num_relayed, -ring.bottleneck_capacity, order)
        if best_key is None or key < best_key:
            best_key = key
            best_ring = ring
    assert best_ring is not None
    return best_ring

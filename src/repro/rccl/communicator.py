"""RCCL communicator setup (ncclCommInitAll-style).

The rccl-tests harness the paper uses drives one CPU thread per GPU;
all threads join one communicator whose ring is fixed at init time.
:class:`RcclCommunicator` reproduces that: it owns the ring over the
selected GCDs and exposes the five collectives as DES processes.
"""

from __future__ import annotations

import warnings
from typing import Callable, Sequence

from ..config import SimEnvironment
from ..errors import RcclError
from ..faults.retry import NO_RETRY, RetryPolicy
from ..hardware.node import HardwareNode
from .ring import Ring, build_greedy_ring


class RcclCommunicator:
    """One RCCL communicator over a set of GCDs."""

    def __init__(
        self,
        node: HardwareNode | None = None,
        gcds: Sequence[int] | None = None,
        *,
        env: SimEnvironment | None = None,
        ring_builder: Callable[..., Ring] = build_greedy_ring,
        retry: RetryPolicy | None = None,
        algorithm: str | None = None,
    ) -> None:
        if node is None:
            warnings.warn(
                "RcclCommunicator() with an implicit node is deprecated; "
                "use repro.Session (session.rccl_communicator()) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.node = node if node is not None else HardwareNode()
        self.env = env if env is not None else SimEnvironment()
        if gcds is None:
            gcds = [g.index for g in self.node.topology.gcds()]
        if len(gcds) < 1:
            raise RcclError("communicator needs at least one GCD")
        self.gcds = tuple(gcds)
        self.retry = retry if retry is not None else NO_RETRY
        # Algorithm resolution: explicit argument beats the ambient
        # default (installed by --algorithm sweeps), which beats the
        # paper-faithful ring.  "auto" runs the RCCL-style selector at
        # init time, like RCCL's tuner fixing its pattern per
        # communicator.
        from .algorithms import active_algorithm, check_algorithm, select_algorithm

        if algorithm is None:
            algorithm = active_algorithm()
        resolved = check_algorithm(algorithm) if algorithm is not None else "ring"
        if resolved == "auto":
            resolved = select_algorithm(self.node.topology, self.gcds)
        self.algorithm = resolved
        self._ring_builder = ring_builder
        self.ring_rebuilds = 0
        if len(self.gcds) >= 2:
            # Plan around links already known dead; custom builders
            # without an avoid_links parameter keep working.
            avoid = self.node.failed_links()
            try:
                self.ring = ring_builder(
                    self.node.topology, self.gcds, avoid_links=avoid
                )
            except TypeError:
                self.ring = ring_builder(self.node.topology, self.gcds)
        else:
            self.ring = None

    @property
    def size(self) -> int:
        """Number of communicator members."""
        return len(self.gcds)

    @property
    def engine(self):
        """The node's DES engine."""
        return self.node.engine

    @property
    def calibration(self):
        """The node's calibration profile."""
        return self.node.calibration

    def rebuild_ring(self) -> Ring:
        """Rebuild the ring around the node's currently failed links.

        Called by the collectives when a step trips on a dead link
        (:class:`~repro.errors.LinkDownError`): the ring builder is
        re-run with ``avoid_links=node.failed_links()``, like RCCL
        re-running its pattern search on the degraded topology.  Custom
        ring builders that do not accept ``avoid_links`` are re-run
        unchanged (they may re-read topology state themselves).
        """
        if self.ring is None:
            raise RcclError("single-GCD communicator has no ring")
        avoid = self.node.failed_links()
        try:
            ring = self._ring_builder(
                self.node.topology, self.gcds, avoid_links=avoid
            )
        except TypeError:
            ring = self._ring_builder(self.node.topology, self.gcds)
        self.ring = ring
        self.ring_rebuilds += 1
        if self.node.metrics:
            self.node.metrics.counter("rccl/ring_rebuilds").inc()
        return ring

    def segment_rate(self, segment) -> float:
        """Sustained bytes/s of one ring segment's kernel pipeline.

        Direct segments run at the unidirectional kernel rate of the
        link; relayed segments (no direct link between the members)
        sustain only ``rccl_relay_efficiency`` of the path's kernel
        rate (the ring FIFO's flow-control window cannot cover the
        doubled round trip).
        """
        tier = self.node.bottleneck_tier(segment.route)
        rate = self.calibration.kernel_remote_cap(tier, bidirectional=False)
        if segment.is_relayed:
            rate *= self.calibration.rccl_relay_efficiency
        return rate

    def describe(self) -> str:
        """Ring summary (order, relays, bottleneck)."""
        if self.ring is None:
            return f"RcclCommunicator(single GCD {self.gcds[0]})"
        return (
            f"RcclCommunicator({self.size} GCDs, {self.algorithm}, "
            f"ring {self.ring.describe()}, "
            f"{self.ring.num_relayed} relayed segment(s), bottleneck "
            f"{self.ring.bottleneck_capacity / 1e9:.0f} GB/s)"
        )

    # Collective entry points are attached from .collectives (and the
    # tree/hierarchical modules) to keep algorithm code in one place.
    def allreduce(self, nbytes: int, sendbufs=None, recvbufs=None):
        """Allreduce via the communicator's selected algorithm.

        ``"ring"`` (paper default) → :mod:`repro.rccl.collectives`;
        ``"tree"``/``"double_binary_tree"`` → :mod:`repro.rccl.tree`;
        ``"hierarchical_ring"`` → :mod:`repro.rccl.hierarchical`.
        """
        if self.algorithm == "tree":
            from .tree import tree_allreduce

            return tree_allreduce(self, nbytes, sendbufs, recvbufs)
        if self.algorithm == "double_binary_tree":
            from .tree import double_binary_tree_allreduce

            return double_binary_tree_allreduce(self, nbytes, sendbufs, recvbufs)
        if self.algorithm == "hierarchical_ring":
            from .hierarchical import hierarchical_allreduce

            return hierarchical_allreduce(self, nbytes, sendbufs, recvbufs)
        from .collectives import allreduce

        return allreduce(self, nbytes, sendbufs, recvbufs)

    def reduce(self, nbytes: int, root: int = 0):
        """Ring reduce toward ``root``."""
        from .collectives import reduce

        return reduce(self, nbytes, root)

    def broadcast(self, nbytes: int, root: int = 0, buffers=None):
        """Broadcast from ``root``.

        The tree algorithms use the binary-tree down-pass; the ring
        algorithms use the LL-protocol pipelined ring the paper
        measures.
        """
        if self.algorithm in ("tree", "double_binary_tree"):
            from .tree import tree_broadcast

            return tree_broadcast(self, nbytes, root, buffers)
        from .collectives import broadcast

        return broadcast(self, nbytes, root, buffers)

    def reduce_scatter(self, nbytes: int):
        """Single-pass ring reduce-scatter."""
        from .collectives import reduce_scatter

        return reduce_scatter(self, nbytes)

    def allgather(self, nbytes: int):
        """Single-pass ring allgather."""
        from .collectives import allgather

        return allgather(self, nbytes)

"""Simulated RCCL: topology-aware ring collectives.

RCCL (AMD's fork of NCCL) builds communication *rings* over the xGMI
topology at communicator-init time and executes collectives as chunked
ring pipelines inside persistent GPU kernels — no SDMA engines, no MPI
matching, no IPC-mapping per message.  That architecture is why the
paper finds RCCL ahead of MPI for every collective except Broadcast
(Fig. 11), and why its latencies depend so strongly on *which* GCDs
participate (Fig. 12's 7→8-thread drop).

- :mod:`repro.rccl.ring` — the greedy widest-link ring search
  (deliberately heuristic, like RCCL's own pattern search: for some
  subsets — 3, 5, 6, 7 ranks — it produces a relayed segment between
  non-adjacent GCDs, and for the full 8-GCD node it finds the perfect
  all-direct ring).
- :mod:`repro.rccl.communicator` — ``ncclCommInitAll``-style setup,
  one rank per GCD.
- :mod:`repro.rccl.collectives` — Reduce / Broadcast / AllReduce /
  ReduceScatter / AllGather as ring pipelines on the simulated fabric.
- :mod:`repro.rccl.algorithms` — the collective-algorithm zoo: the
  registry (ring / tree / double binary tree / hierarchical ring), the
  RCCL-style topology-aware selector, and the ambient default used by
  ``--algorithm`` sweeps.
- :mod:`repro.rccl.tree` / :mod:`repro.rccl.hierarchical` — the
  non-ring allreduce patterns.
"""

from .ring import Ring, RingSegment, build_greedy_ring, build_optimal_ring
from .communicator import RcclCommunicator
from .collectives import RCCL_COLLECTIVES
from .algorithms import (
    RCCL_ALGORITHMS,
    active_algorithm,
    check_algorithm,
    install_algorithm,
    select_algorithm,
    xgmi_islands,
)

__all__ = [
    "Ring",
    "RingSegment",
    "build_greedy_ring",
    "build_optimal_ring",
    "RcclCommunicator",
    "RCCL_COLLECTIVES",
    "RCCL_ALGORITHMS",
    "active_algorithm",
    "check_algorithm",
    "install_algorithm",
    "select_algorithm",
    "xgmi_islands",
]

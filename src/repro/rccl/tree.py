"""RCCL tree algorithm (extension beyond the paper's measurements).

RCCL, like NCCL, implements a second allreduce algorithm next to the
ring: a (double) binary tree, selected for small messages where the
ring's ``2(n-1)`` serialized steps dominate (``NCCL_ALGO=Tree``).  The
paper measures the default selection only; this module implements the
tree so the ablation benchmarks can quantify the ring/tree crossover
on the Fig. 1 topology.

The tree is built over the communicator's GCDs in index order (RCCL
builds its trees from the ring order); each tree edge is routed over
the fabric like a ring segment.  An allreduce is a reduce pass up the
tree followed by a broadcast pass down, pipelined in chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

from ..errors import RcclError
from ..topology.routing import bandwidth_maximizing_path
from .communicator import RcclCommunicator
from .ring import RingSegment


@dataclass(frozen=True)
class TreeNode:
    """One communicator member's position in the binary tree."""

    gcd: int
    parent: int | None
    children: tuple[int, ...]


def build_binary_tree(members: Sequence[int]) -> dict[int, TreeNode]:
    """In-order binary tree over ``members`` (index order).

    Node ``i``'s children are ``2i+1`` and ``2i+2`` in member order —
    the classic array-heap layout RCCL derives its trees from.
    """
    members = list(members)
    if len(members) < 1:
        raise RcclError("tree needs at least one member")
    nodes: dict[int, TreeNode] = {}
    for i, gcd in enumerate(members):
        parent = members[(i - 1) // 2] if i > 0 else None
        children = tuple(
            members[c] for c in (2 * i + 1, 2 * i + 2) if c < len(members)
        )
        nodes[gcd] = TreeNode(gcd, parent, children)
    return nodes


def tree_depth(nodes: dict[int, TreeNode]) -> int:
    """Longest leaf-to-root path length (edges)."""
    def depth_of(gcd: int) -> int:
        node = nodes[gcd]
        if not node.children:
            return 0
        return 1 + max(depth_of(c) for c in node.children)

    roots = [g for g, n in nodes.items() if n.parent is None]
    return depth_of(roots[0])


def _edge_segment(comm: RcclCommunicator, src: int, dst: int) -> RingSegment:
    route = bandwidth_maximizing_path(comm.node.topology, src, dst)
    return RingSegment(src, dst, route)


def _staged_edge_flows(
    comm: RcclCommunicator,
    stages: "list[list[tuple[RingSegment, int]]]",
    *,
    label: str,
) -> Generator:
    """Run pipeline stages of concurrent ``(segment, chunk)`` flows.

    Shared driver of the tree-family collectives: per stage, every
    listed segment moves its chunk concurrently (tree levels contend
    for links on the simulated fabric exactly like ring steps); then
    the per-step overhead — plus the relay penalty when any stage
    segment is relayed — elapses.  Span, tracer and metrics bookkeeping
    match :func:`repro.rccl.collectives._synchronized_steps`.
    """
    engine = comm.engine
    calibration = comm.calibration
    start = engine.now
    spans = comm.node.spans
    collective_span = (
        spans.begin("rccl", f"rccl:{label}", start=start, steps=len(stages))
        if spans
        else None
    )
    yield engine.timeout(calibration.rccl_launch_overhead)
    for stage_index, stage in enumerate(stages):
        stage_span = (
            spans.begin(
                "rccl-step",
                f"{label}/stage{stage_index}",
                start=engine.now,
                parent=collective_span,
            )
            if spans
            else None
        )
        flows = [
            comm.node.start_flow(
                comm.node.gcd_to_gcd_channels(segment.src, segment.dst),
                chunk,
                cap=comm.segment_rate(segment),
                label=f"rccl-{label}:{segment.src}->{segment.dst}",
                span=stage_span,
            )
            for segment, chunk in stage
        ]
        yield engine.all_of([f.done for f in flows])
        relayed = any(segment.is_relayed for segment, _ in stage)
        extra = calibration.rccl_relay_penalty if relayed else 0.0
        yield engine.timeout(calibration.rccl_step_overhead + extra)
        if stage_span is not None:
            spans.finish(stage_span, engine.now)
    if collective_span is not None:
        spans.finish(collective_span, engine.now)
    tracer = comm.node.tracer
    if tracer.enabled:
        tracer.record(start, engine.now, "rccl", label, steps=len(stages))
    metrics = comm.node.metrics
    if metrics:
        metrics.counter(f"rccl/{label}").inc()
        metrics.counter("rccl/steps").inc(len(stages))


def tree_allreduce(
    comm: RcclCommunicator,
    nbytes: int,
    sendbufs: "BufferMap | None" = None,
    recvbufs: "BufferMap | None" = None,
) -> Generator:
    """Binary-tree allreduce: chunked reduce-up + broadcast-down.

    Pipeline stages: ``2 × depth + (chunks - 1)`` levels, each level
    moving one chunk over every tree edge concurrently.  Latency scales
    with ``log2 n`` instead of the ring's ``n`` — the small-message
    regime where RCCL's tuner picks the tree.  ``sendbufs``/``recvbufs``
    enable the same functional payload contract as the ring allreduce.
    """
    from .collectives import _apply_reduction, _check, _check_buffers

    _check(comm, nbytes)
    _check_buffers(comm, sendbufs, nbytes, "send")
    _check_buffers(comm, recvbufs, nbytes, "recv")
    if comm.size == 1:
        if sendbufs is not None and recvbufs is not None:
            _apply_reduction(sendbufs, recvbufs, nbytes)
        return
    nodes = build_binary_tree(sorted(comm.gcds))
    depth = tree_depth(nodes)
    calibration = comm.calibration
    chunk = min(nbytes, calibration.rccl_chunk_bytes)
    num_chunks = -(-nbytes // chunk)

    # Every tree edge, used in both directions (up for reduce, down for
    # broadcast); built once.
    edges = [
        (
            _edge_segment(comm, node.gcd, node.parent),
            _edge_segment(comm, node.parent, node.gcd),
        )
        for node in nodes.values()
        if node.parent is not None
    ]
    stage = [(up, chunk) for up, _ in edges] + [(down, chunk) for _, down in edges]
    num_stages = 2 * depth + num_chunks - 1
    yield from _staged_edge_flows(
        comm, [stage] * num_stages, label="tree_allreduce"
    )
    _apply_reduction(sendbufs, recvbufs, nbytes)


def tree_broadcast(
    comm: RcclCommunicator,
    nbytes: int,
    root: int = 0,
    buffers: "BufferMap | None" = None,
) -> Generator:
    """Binary-tree broadcast: a chunk-pipelined down-pass from ``root``.

    The tree is built with the root at the heap apex (RCCL re-roots its
    trees per collective); stages: ``depth + (chunks - 1)``.  Unlike
    the ring broadcast there is no LL-protocol penalty — the tree's
    fan-out pattern keeps the send sides independent.
    """
    from .collectives import _check, _check_buffers

    _check(comm, nbytes, root)
    _check_buffers(comm, buffers, nbytes, "broadcast")
    if comm.size == 1:
        return
    ordered = [root] + [g for g in sorted(comm.gcds) if g != root]
    nodes = build_binary_tree(ordered)
    depth = tree_depth(nodes)
    calibration = comm.calibration
    chunk = min(nbytes, calibration.rccl_chunk_bytes)
    num_chunks = -(-nbytes // chunk)
    stage = [
        (_edge_segment(comm, node.parent, node.gcd), chunk)
        for node in nodes.values()
        if node.parent is not None
    ]
    num_stages = depth + num_chunks - 1
    yield from _staged_edge_flows(
        comm, [stage] * num_stages, label="tree_broadcast"
    )
    if buffers is not None and any(b.has_data for b in buffers.values()):
        source = buffers[root].ensure_data()[:nbytes]
        for gcd, buffer in buffers.items():
            if gcd != root:
                buffer.ensure_data()[:nbytes] = source


def build_double_binary_tree(
    members: Sequence[int],
) -> "tuple[dict[int, TreeNode], dict[int, TreeNode]]":
    """The two complementary trees of the double-binary-tree pattern.

    Tree 1 is the array-heap over members in ascending order; tree 2
    over *descending* order, so the heavily-loaded members near tree
    1's apex sit near tree 2's leaves and vice versa — the
    load-spreading idea behind NCCL/RCCL's double binary tree.
    """
    members = sorted(members)
    if len(members) < 1:
        raise RcclError("tree needs at least one member")
    return (
        build_binary_tree(members),
        build_binary_tree(list(reversed(members))),
    )


def double_binary_tree_allreduce(
    comm: RcclCommunicator,
    nbytes: int,
    sendbufs: "BufferMap | None" = None,
    recvbufs: "BufferMap | None" = None,
) -> Generator:
    """Double-binary-tree allreduce: two half-message trees in flight.

    The message is split in half; each half runs a reduce-up/
    broadcast-down pass on its own tree, both trees active in every
    stage.  Because the trees are complementary, each member is
    interior in at most one of them, which roughly doubles usable
    injection bandwidth over the single tree at large sizes.
    """
    from .collectives import _apply_reduction, _check, _check_buffers

    _check(comm, nbytes)
    _check_buffers(comm, sendbufs, nbytes, "send")
    _check_buffers(comm, recvbufs, nbytes, "recv")
    if comm.size == 1:
        if sendbufs is not None and recvbufs is not None:
            _apply_reduction(sendbufs, recvbufs, nbytes)
        return
    tree_one, tree_two = build_double_binary_tree(comm.gcds)
    calibration = comm.calibration
    half_one = nbytes - nbytes // 2
    half_two = nbytes // 2
    chunk_one = min(half_one, calibration.rccl_chunk_bytes)
    num_chunks = -(-half_one // chunk_one)
    chunk_two = min(half_two, calibration.rccl_chunk_bytes) if half_two else 0
    depth = max(tree_depth(tree_one), tree_depth(tree_two))

    stage: "list[tuple[RingSegment, int]]" = []
    for tree, chunk in ((tree_one, chunk_one), (tree_two, chunk_two)):
        if chunk <= 0:
            continue
        for node in tree.values():
            if node.parent is None:
                continue
            stage.append((_edge_segment(comm, node.gcd, node.parent), chunk))
            stage.append((_edge_segment(comm, node.parent, node.gcd), chunk))
    num_stages = 2 * depth + num_chunks - 1
    yield from _staged_edge_flows(
        comm, [stage] * num_stages, label="double_binary_tree_allreduce"
    )
    _apply_reduction(sendbufs, recvbufs, nbytes)


def tree_edge_count(num_members: int) -> int:
    """Edges in a binary tree of n members (n - 1)."""
    if num_members < 1:
        raise RcclError("tree needs at least one member")
    return num_members - 1

"""RCCL tree algorithm (extension beyond the paper's measurements).

RCCL, like NCCL, implements a second allreduce algorithm next to the
ring: a (double) binary tree, selected for small messages where the
ring's ``2(n-1)`` serialized steps dominate (``NCCL_ALGO=Tree``).  The
paper measures the default selection only; this module implements the
tree so the ablation benchmarks can quantify the ring/tree crossover
on the Fig. 1 topology.

The tree is built over the communicator's GCDs in index order (RCCL
builds its trees from the ring order); each tree edge is routed over
the fabric like a ring segment.  An allreduce is a reduce pass up the
tree followed by a broadcast pass down, pipelined in chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

from ..errors import RcclError
from ..topology.routing import bandwidth_maximizing_path
from .communicator import RcclCommunicator
from .ring import RingSegment


@dataclass(frozen=True)
class TreeNode:
    """One communicator member's position in the binary tree."""

    gcd: int
    parent: int | None
    children: tuple[int, ...]


def build_binary_tree(members: Sequence[int]) -> dict[int, TreeNode]:
    """In-order binary tree over ``members`` (index order).

    Node ``i``'s children are ``2i+1`` and ``2i+2`` in member order —
    the classic array-heap layout RCCL derives its trees from.
    """
    members = list(members)
    if len(members) < 1:
        raise RcclError("tree needs at least one member")
    nodes: dict[int, TreeNode] = {}
    for i, gcd in enumerate(members):
        parent = members[(i - 1) // 2] if i > 0 else None
        children = tuple(
            members[c] for c in (2 * i + 1, 2 * i + 2) if c < len(members)
        )
        nodes[gcd] = TreeNode(gcd, parent, children)
    return nodes


def tree_depth(nodes: dict[int, TreeNode]) -> int:
    """Longest leaf-to-root path length (edges)."""
    def depth_of(gcd: int) -> int:
        node = nodes[gcd]
        if not node.children:
            return 0
        return 1 + max(depth_of(c) for c in node.children)

    roots = [g for g, n in nodes.items() if n.parent is None]
    return depth_of(roots[0])


def _edge_segment(comm: RcclCommunicator, src: int, dst: int) -> RingSegment:
    route = bandwidth_maximizing_path(comm.node.topology, src, dst)
    return RingSegment(src, dst, route)


def tree_allreduce(comm: RcclCommunicator, nbytes: int) -> Generator:
    """Binary-tree allreduce: chunked reduce-up + broadcast-down.

    Pipeline stages: ``2 × depth + (chunks - 1)`` levels, each level
    moving one chunk over every tree edge concurrently.  Latency scales
    with ``log2 n`` instead of the ring's ``n`` — the small-message
    regime where RCCL's tuner picks the tree.
    """
    if nbytes <= 0:
        raise RcclError("collective size must be positive")
    if comm.size == 1:
        return
    nodes = build_binary_tree(sorted(comm.gcds))
    depth = tree_depth(nodes)
    engine = comm.engine
    calibration = comm.calibration
    chunk = min(nbytes, calibration.rccl_chunk_bytes)
    num_chunks = -(-nbytes // chunk)

    # Every tree edge, used in both directions (up for reduce, down for
    # broadcast); built once.
    up_edges = [
        _edge_segment(comm, node.gcd, node.parent)
        for node in nodes.values()
        if node.parent is not None
    ]
    down_edges = [
        _edge_segment(comm, node.parent, node.gcd)
        for node in nodes.values()
        if node.parent is not None
    ]

    yield engine.timeout(calibration.rccl_launch_overhead)
    num_stages = 2 * depth + num_chunks - 1
    for _stage in range(num_stages):
        flows = []
        for segment in up_edges + down_edges:
            if segment.is_relayed:
                # Relay penalty charged as added latency per stage.
                pass
            flows.append(
                comm.node.start_flow(
                    comm.node.gcd_to_gcd_channels(segment.src, segment.dst),
                    chunk,
                    cap=comm.segment_rate(segment),
                    label=f"rccl-tree:{segment.src}->{segment.dst}",
                )
            )
        yield engine.all_of([f.done for f in flows])
        relayed = any(s.is_relayed for s in up_edges + down_edges)
        extra = calibration.rccl_relay_penalty if relayed else 0.0
        yield engine.timeout(calibration.rccl_step_overhead + extra)


def tree_edge_count(num_members: int) -> int:
    """Edges in a binary tree of n members (n - 1)."""
    if num_members < 1:
        raise RcclError("tree needs at least one member")
    return num_members - 1

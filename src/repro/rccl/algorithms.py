"""The collective-algorithm zoo: registry, selection, ambient default.

RCCL implements several allreduce patterns next to the classic ring and
picks between them at communicator-init time from the detected
topology.  The simulator mirrors that:

- ``"ring"`` — the paper-faithful greedy ring
  (:mod:`repro.rccl.collectives`); always the default, so every golden
  figure reproduces the paper bit-identically unless an algorithm is
  asked for explicitly.
- ``"tree"`` — binary-tree reduce-up/broadcast-down
  (:func:`repro.rccl.tree.tree_allreduce`).
- ``"double_binary_tree"`` — two complementary binary trees each
  carrying half the message
  (:func:`repro.rccl.tree.double_binary_tree_allreduce`).
- ``"hierarchical_ring"`` — intra-node ring stages bracketing an
  inter-node NIC exchange
  (:func:`repro.rccl.hierarchical.hierarchical_allreduce`).
- ``"auto"`` — :func:`select_algorithm`'s RCCL-style topology-aware
  choice by member count, link census and NIC presence.

The ambient context (:func:`install_algorithm`/:func:`active_algorithm`)
mirrors :mod:`repro.faults.context`: ``--algorithm`` sweeps install it
per process so communicators built deep inside measurement functions
adopt the selection without signature changes.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from itertools import combinations
from typing import Iterator, Sequence

from ..errors import RcclError
from ..topology.node import NodeTopology

#: Selectable collective algorithms (``"auto"`` resolves to one of these).
RCCL_ALGORITHMS: tuple[str, ...] = (
    "ring",
    "tree",
    "double_binary_tree",
    "hierarchical_ring",
)


def check_algorithm(name: str) -> str:
    """Validate an algorithm name (``"auto"`` allowed); returns it."""
    if name == "auto" or name in RCCL_ALGORITHMS:
        return name
    known = ", ".join(RCCL_ALGORITHMS + ("auto",))
    raise RcclError(f"unknown collective algorithm {name!r} (known: {known})")


# Per-thread (ContextVar) so concurrent serve sessions can steer
# different algorithms without interfering; single-threaded runs see
# plain module-global behavior.
_ACTIVE: "ContextVar[str | None]" = ContextVar(
    "repro_ambient_algorithm", default=None
)


def active_algorithm() -> "str | None":
    """The ambient algorithm new communicators should adopt, if any."""
    return _ACTIVE.get()


@contextmanager
def install_algorithm(name: "str | None") -> Iterator["str | None"]:
    """Make ``name`` the ambient default algorithm for the block.

    Nests: the previous value (usually ``None``) is restored on exit.
    Installing ``None`` explicitly shields inner code from an outer
    context.
    """
    if name is not None:
        check_algorithm(name)
    token = _ACTIVE.set(name)
    try:
        yield name
    finally:
        _ACTIVE.reset(token)


def xgmi_islands(
    topology: NodeTopology, members: Sequence[int]
) -> "list[list[int]]":
    """Group ``members`` by connected component of the xGMI-only graph.

    On a single node every GCD shares one xGMI component and this
    returns one island.  On a cluster the xGMI mesh of each node is its
    own component (nodes only meet over CPU+NIC hops), so the islands
    are exactly the per-node member groups — derived from link structure
    alone, which is what makes the hierarchical algorithms work on
    file-defined topologies with no "node" annotation.  Islands are
    sorted by their smallest member; members inside an island keep
    ascending order.
    """
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(g.index for g in topology.gcds())
    for link in topology.xgmi_links():
        graph.add_edge(link.a.index, link.b.index)
    component_of: dict[int, int] = {}
    for component_id, component in enumerate(nx.connected_components(graph)):
        for gcd in component:
            component_of[gcd] = component_id
    groups: dict[int, list[int]] = {}
    for member in sorted(members):
        groups.setdefault(component_of[member], []).append(member)
    return sorted(groups.values(), key=lambda island: island[0])


def select_algorithm(topology: NodeTopology, members: Sequence[int]) -> str:
    """RCCL-style topology-aware algorithm choice.

    Decision order (documented in ``docs/modeling.md`` §15):

    1. Members spanning more than one xGMI island on a topology with
       NIC links → ``"hierarchical_ring"`` (amortise the slow NIC stage
       over fast intra-node rings).
    2. Four or fewer members → ``"tree"`` (latency-bound small groups;
       ``log2 n`` depth beats the ring's ``n`` steps).
    3. A link census where every member has at least two direct xGMI
       peers among the members → ``"ring"`` (an all-direct ring exists;
       the paper's 8-GCD regime).
    4. Otherwise → ``"double_binary_tree"`` (a sparse census forces
       relayed ring segments; two half-message trees spread the load
       over more links instead).
    """
    members = sorted(set(members))
    if len(members) < 2:
        return "ring"
    islands = xgmi_islands(topology, members)
    if len(islands) > 1 and next(iter(topology.nic_links()), None) is not None:
        return "hierarchical_ring"
    if len(members) <= 4:
        return "tree"
    degree = {member: 0 for member in members}
    for a, b in combinations(members, 2):
        if topology.peer_tier(a, b) is not None:
            degree[a] += 1
            degree[b] += 1
    if min(degree.values()) >= 2:
        return "ring"
    return "double_binary_tree"

"""RCCL ring collectives as DES processes.

All five collectives execute on the communicator's ring:

- **AllReduce** — the classic ring: a reduce-scatter pass followed by
  an allgather pass, ``2(n-1)`` synchronized steps of ``S/n``-byte
  chunks.
- **ReduceScatter / AllGather** — one pass, ``n-1`` steps of ``S/n``.
- **Reduce** — one pass of ``S/n`` chunks accumulating toward the
  root.
- **Broadcast** — chunk-pipelined ring under the LL protocol (50 %
  bandwidth efficiency), which is why MPI's binomial tree beats it in
  Fig. 11b.

Each step launches one flow per ring segment on the simulated fabric,
so segments sharing a physical link contend for it; relayed segments
pay the relay penalty and the reduced FIFO rate.  Per-step and
per-call overheads come from the calibration profile.
"""

from __future__ import annotations

from typing import Generator, Mapping

from ..errors import LinkDownError, RcclError
from ..memory.buffer import Buffer
from .communicator import RcclCommunicator
from .ring import RingSegment

#: Per-GCD buffer maps for functional payload mode.
BufferMap = Mapping[int, Buffer]


def _check(comm: RcclCommunicator, nbytes: int, root: int | None = None) -> None:
    if nbytes <= 0:
        raise RcclError("collective size must be positive")
    if root is not None and root not in comm.gcds:
        raise RcclError(f"root GCD {root} not in communicator {comm.gcds}")


def _check_buffers(
    comm: RcclCommunicator, buffers: BufferMap | None, nbytes: int, name: str
) -> None:
    if buffers is None:
        return
    missing = set(comm.gcds) - set(buffers)
    if missing:
        raise RcclError(f"{name} buffers missing for GCDs {sorted(missing)}")
    for gcd, buffer in buffers.items():
        if buffer.size < nbytes:
            raise RcclError(
                f"{name} buffer on GCD {gcd} smaller than the message"
            )


def _apply_reduction(
    sendbufs: BufferMap | None, recvbufs: BufferMap | None, nbytes: int
) -> None:
    """Functional mode: recv[g] = elementwise sum of all send buffers.

    The chunk-level data flow is not simulated (the ring moves fluid
    bytes); the *result* is computed once the collective's simulated
    time has elapsed, which is the observable contract.
    """
    if sendbufs is None or recvbufs is None:
        return
    materialized = any(b.has_data for b in sendbufs.values()) or any(
        b.has_data for b in recvbufs.values()
    )
    if not materialized:
        return
    total = None
    for buffer in sendbufs.values():
        data = buffer.ensure_data()[:nbytes]
        total = data.copy() if total is None else total + data
    assert total is not None
    for buffer in recvbufs.values():
        buffer.ensure_data()[:nbytes] = total


def _segment_step(
    comm: RcclCommunicator, segment: RingSegment, chunk: int,
    rate_factor: float = 1.0,
    span: "object" = None,
) -> Generator:
    """One segment's work within a step: relay penalty + chunk flow.

    ``rate_factor`` scales the sustained rate; broadcast passes the LL
    protocol efficiency here.  ``span`` binds the segment's flow to
    the enclosing step span (causality + blame attribution).

    If the segment's route crosses a link that fails (a
    :class:`~repro.errors.LinkDownError` either at flow start or
    mid-flight), the communicator rebuilds its ring around the dead
    links and the step retries on the new segment under ``comm.retry``
    — the DES analogue of RCCL re-initialising the communicator after
    a fabric error.  The whole chunk is resent on retry.
    """
    policy = comm.retry
    attempt = 1
    while True:
        try:
            if segment.is_relayed:
                yield comm.engine.timeout(comm.calibration.rccl_relay_penalty)
            flow = comm.node.start_flow(
                comm.node.gcd_to_gcd_channels(segment.src, segment.dst),
                chunk,
                cap=comm.segment_rate(segment) * rate_factor,
                label=f"rccl:{segment.src}->{segment.dst}",
                span=span,
            )
            yield flow.done
            return
        except LinkDownError as exc:
            if not policy.allows_retry(attempt):
                raise RcclError(
                    f"ring segment {segment.src}->{segment.dst} failed "
                    f"after {attempt} attempt(s): {exc}"
                ) from exc
            if comm.node.metrics:
                comm.node.metrics.counter("rccl/segment_retries").inc()
            delay = policy.delay(attempt)
            attempt += 1
            if delay > 0:
                yield comm.engine.timeout(delay)
            comm.rebuild_ring()
            segment = comm.ring.segment_from(segment.src)


def _synchronized_steps(
    comm: RcclCommunicator, num_steps: int, chunk: int, *, label: str
) -> Generator:
    """Run ``num_steps`` ring steps; all segments active each step."""
    assert comm.ring is not None
    engine = comm.engine
    start = engine.now
    spans = comm.node.spans
    collective_span = (
        spans.begin(
            "rccl", f"rccl:{label}", start=start, steps=num_steps, chunk=chunk
        )
        if spans
        else None
    )
    yield engine.timeout(comm.calibration.rccl_launch_overhead)
    for step in range(num_steps):
        step_span = (
            spans.begin(
                "rccl-step",
                f"{label}/step{step}",
                start=engine.now,
                parent=collective_span,
            )
            if spans
            else None
        )
        processes = [
            engine.process(_segment_step(comm, segment, chunk, span=step_span))
            for segment in comm.ring.segments
        ]
        yield engine.all_of(processes)
        yield engine.timeout(comm.calibration.rccl_step_overhead)
        if step_span is not None:
            spans.finish(step_span, engine.now)
    if collective_span is not None:
        spans.finish(collective_span, engine.now)
    tracer = comm.node.tracer
    if tracer.enabled:
        tracer.record(
            start, engine.now, "rccl", label, steps=num_steps, chunk=chunk
        )
    metrics = comm.node.metrics
    if metrics:
        metrics.counter(f"rccl/{label}").inc()
        metrics.counter("rccl/steps").inc(num_steps)


def allreduce(
    comm: RcclCommunicator,
    nbytes: int,
    sendbufs: BufferMap | None = None,
    recvbufs: BufferMap | None = None,
) -> Generator:
    """Ring allreduce: reduce-scatter pass + allgather pass.

    ``sendbufs``/``recvbufs`` ({gcd: Buffer}) enable functional payload
    mode: every recv buffer ends holding the elementwise sum.
    """
    _check(comm, nbytes)
    _check_buffers(comm, sendbufs, nbytes, "send")
    _check_buffers(comm, recvbufs, nbytes, "recv")
    if comm.size == 1:
        if sendbufs is not None and recvbufs is not None:
            _apply_reduction(sendbufs, recvbufs, nbytes)
        return
    n = comm.size
    chunk = -(-nbytes // n)
    yield from _synchronized_steps(comm, 2 * (n - 1), chunk, label="allreduce")
    _apply_reduction(sendbufs, recvbufs, nbytes)


def reduce_scatter(comm: RcclCommunicator, nbytes: int) -> Generator:
    """Ring reduce-scatter: one pass of S/n chunks."""
    _check(comm, nbytes)
    if comm.size == 1:
        return
    n = comm.size
    chunk = -(-nbytes // n)
    yield from _synchronized_steps(comm, n - 1, chunk, label="reduce_scatter")


def allgather(comm: RcclCommunicator, nbytes: int) -> Generator:
    """Ring allgather: one pass of S/n chunks."""
    _check(comm, nbytes)
    if comm.size == 1:
        return
    n = comm.size
    chunk = -(-nbytes // n)
    yield from _synchronized_steps(comm, n - 1, chunk, label="allgather")


def reduce(comm: RcclCommunicator, nbytes: int, root: int = 0) -> Generator:
    """Ring reduce: one chunked pass accumulating toward the root."""
    _check(comm, nbytes, root)
    if comm.size == 1:
        return
    n = comm.size
    chunk = -(-nbytes // n)
    yield from _synchronized_steps(comm, n - 1, chunk, label="reduce")


def broadcast(
    comm: RcclCommunicator,
    nbytes: int,
    root: int = 0,
    buffers: BufferMap | None = None,
) -> Generator:
    """Chunk-pipelined ring broadcast under the LL protocol.

    The message travels from the root around the ring in
    ``rccl_chunk_bytes`` chunks; the pipeline needs
    ``(ring_length - 1) + (num_chunks - 1)`` stages.  Broadcast is a
    single-producer pattern, so RCCL selects the low-latency (LL)
    protocol, which interleaves a flag word with every data word and
    halves effective bandwidth — the reason MPI's binomial tree wins
    broadcast at 1 MiB (Fig. 11b) while RCCL wins everything else.
    """
    _check(comm, nbytes, root)
    _check_buffers(comm, buffers, nbytes, "broadcast")
    if comm.size == 1:
        return
    assert comm.ring is not None
    engine = comm.engine
    start = engine.now
    spans = comm.node.spans
    collective_span = (
        spans.begin("rccl", "rccl:broadcast", start=start, bytes=nbytes)
        if spans
        else None
    )
    yield engine.timeout(comm.calibration.rccl_launch_overhead)
    ll = comm.calibration.rccl_ll_efficiency
    chunk = min(nbytes, comm.calibration.rccl_chunk_bytes)
    num_chunks = -(-nbytes // chunk)
    # Forward segments only: the chain from root around the ring,
    # excluding the segment that would re-enter the root.
    ordered = []
    current = root
    for _ in range(comm.size - 1):
        segment = comm.ring.segment_from(current)
        ordered.append(segment)
        current = segment.dst
    num_stages = len(ordered) + num_chunks - 1
    for stage in range(num_stages):
        stage_span = (
            spans.begin(
                "rccl-step",
                f"broadcast/stage{stage}",
                start=engine.now,
                parent=collective_span,
            )
            if spans
            else None
        )
        processes = [
            engine.process(
                _segment_step(comm, segment, chunk, rate_factor=ll, span=stage_span)
            )
            for segment in ordered
        ]
        yield engine.all_of(processes)
        yield engine.timeout(comm.calibration.rccl_step_overhead)
        if stage_span is not None:
            spans.finish(stage_span, engine.now)
    if collective_span is not None:
        spans.finish(collective_span, engine.now)
    if buffers is not None and any(b.has_data for b in buffers.values()):
        source = buffers[root].ensure_data()[:nbytes]
        for gcd, buffer in buffers.items():
            if gcd != root:
                buffer.ensure_data()[:nbytes] = source
    tracer = comm.node.tracer
    if tracer.enabled:
        tracer.record(start, engine.now, "rccl", "broadcast", bytes=nbytes)
    metrics = comm.node.metrics
    if metrics:
        metrics.counter("rccl/broadcast").inc()
        metrics.counter("rccl/steps").inc(num_stages)


#: Name → implementation registry (mirrors rccl-tests binaries).
RCCL_COLLECTIVES = {
    "reduce": reduce,
    "broadcast": broadcast,
    "allreduce": allreduce,
    "reduce_scatter": reduce_scatter,
    "allgather": allgather,
}

"""Auto-calibrator: fit efficiency constants to a telemetry stream.

The performance model is mechanistic; its empirical content lives in
the bounded efficiency constants of
:class:`~repro.core.calibration.CalibrationProfile`.  When a machine's
telemetry drifts from the model — different ROCm release, different
firmware SDMA tuning, a degraded link — the constants are what should
absorb the difference.  The fitter minimizes the duration-weighted sum
of squared relative residuals between predicted and measured durations
over the stream, by deterministic coordinate descent: each pass runs a
golden-section line search per sensitive field over its validity
bounds, and passes repeat until the objective stops improving.

There is no randomness anywhere (fixed probe offsets, fixed bracket
arithmetic), so the same telemetry and base profile always fit to the
same constants — a requirement for the fitted profile's fingerprint to
be a meaningful result-cache key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..core.calibration import CalibrationProfile, DEFAULT_CALIBRATION
from ..errors import CalibrationError, TelemetryError
from ..topology.context import resolve_default as resolve_default_topology
from ..topology.node import NodeTopology
from .replay import predicted_duration, record_point
from .schema import TelemetryRecord, TelemetryStream

#: The fittable constants: every bounded efficiency field of the
#: profile, with the search interval the fitter may explore.  The
#: validity constraint is ``0 < value <= 1``; the lower bound here is
#: a practical floor (a fabric running below 5 % efficiency is broken
#: hardware, not a calibration problem).
FIT_BOUNDS: dict[str, tuple[float, float]] = {
    "sdma_xgmi_efficiency": (0.05, 1.0),
    "sdma_cpu_link_efficiency": (0.05, 1.0),
    "hbm_stream_efficiency": (0.05, 1.0),
    "kernel_xgmi_uni_efficiency": (0.05, 1.0),
    "kernel_xgmi_bidir_efficiency": (0.05, 1.0),
    "kernel_cpu_uni_efficiency": (0.05, 1.0),
    "kernel_cpu_cached_efficiency": (0.05, 1.0),
    "pageable_efficiency": (0.05, 1.0),
    "mpi_protocol_efficiency": (0.05, 1.0),
}

#: Relative probe offset of the sensitivity check.
_PROBE_STEP = 0.02
#: A field whose probe moves the objective by less than this fraction
#: of it is insensitive for this stream and is skipped (e.g. the SDMA
#: xGMI efficiency when every record rides the flat engine-bound
#: region, or the pageable efficiency when no pageable H2D was seen).
_SENSITIVITY_FLOOR = 1e-12

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


class _Objective:
    """Duration-weighted squared-relative-residual objective.

    One call simulates every (distinct) record under the candidate
    profile.  Records sharing kind and fields collapse to one
    simulation — telemetry streams repeat operations, predictions
    don't care about timestamps.
    """

    def __init__(
        self, records: Sequence[TelemetryRecord], topology: NodeTopology
    ) -> None:
        self.records = records
        self.topology = topology
        self.measured = np.array([r.duration for r in records], dtype=float)
        self.weights = self.measured.copy()
        self.weight_sum = float(self.weights.sum())
        self.evaluations = 0

    def residuals(self, profile: CalibrationProfile) -> np.ndarray:
        self.evaluations += 1
        memo: dict[tuple[str, tuple], float] = {}
        predicted = np.empty(len(self.records), dtype=float)
        for i, record in enumerate(self.records):
            key = (record.kind, record.fields)
            value = memo.get(key)
            if value is None:
                point = record_point(
                    record, topology=self.topology, calibration=profile
                )
                value = predicted_duration(record, point.execute())
                memo[key] = value
            predicted[i] = value
        return (predicted - self.measured) / self.measured

    def __call__(self, profile: CalibrationProfile) -> float:
        residuals = self.residuals(profile)
        return float(np.sum(self.weights * residuals * residuals))

    def rms(self, objective_value: float) -> float:
        """Weighted RMS relative residual for an objective value."""
        if self.weight_sum <= 0:
            return 0.0
        return math.sqrt(max(objective_value, 0.0) / self.weight_sum)


def _golden_section(
    fn: Callable[[float], float], lo: float, hi: float, *, xtol: float
) -> tuple[float, float]:
    """Deterministic golden-section minimum of ``fn`` on ``[lo, hi]``."""
    c = hi - _INV_PHI * (hi - lo)
    d = lo + _INV_PHI * (hi - lo)
    fc = fn(c)
    fd = fn(d)
    while hi - lo > xtol:
        if fc < fd:
            hi, d, fd = d, c, fc
            c = hi - _INV_PHI * (hi - lo)
            fc = fn(c)
        else:
            lo, c, fc = c, d, fd
            d = lo + _INV_PHI * (hi - lo)
            fd = fn(d)
    x = 0.5 * (lo + hi)
    return x, fn(x)


@dataclass(frozen=True)
class CalibrationFit:
    """Result of one auto-calibration run."""

    profile: CalibrationProfile
    base_fingerprint: str
    telemetry_name: str
    telemetry_fingerprint: str
    fitted_fields: tuple[str, ...]
    skipped_fields: tuple[str, ...]
    initial_rms: float
    final_rms: float
    evaluations: int
    passes: int
    record_count: int

    def provenance(self) -> dict[str, Any]:
        """Provenance block for :func:`~repro.core.calibration.profile_to_json`."""
        return {
            "source": "fitted-from-telemetry",
            "telemetry": self.telemetry_name,
            "telemetry_fingerprint": self.telemetry_fingerprint,
            "fitted_fields": list(self.fitted_fields),
            "initial_rms": self.initial_rms,
            "final_rms": self.final_rms,
            "evaluations": self.evaluations,
        }

    def to_json(self) -> dict[str, Any]:
        """Plain JSON-able fit summary (the ``repro calibrate --json`` payload)."""
        return {
            "schema": "repro-calibration-fit/1",
            "telemetry": self.telemetry_name,
            "telemetry_fingerprint": self.telemetry_fingerprint,
            "base_fingerprint": self.base_fingerprint,
            "profile_fingerprint": self.profile.fingerprint(),
            "fitted_fields": {
                name: getattr(self.profile, name) for name in self.fitted_fields
            },
            "skipped_fields": list(self.skipped_fields),
            "initial_rms": self.initial_rms,
            "final_rms": self.final_rms,
            "evaluations": self.evaluations,
            "passes": self.passes,
            "record_count": self.record_count,
        }

    def describe(self) -> str:
        """Human-readable fit summary (the ``repro calibrate`` output)."""
        lines = [
            f"Calibration fit against {self.telemetry_name!r} "
            f"({self.record_count} record(s)):",
            f"  residual RMS {self.initial_rms:.3%} -> {self.final_rms:.3%} "
            f"in {self.passes} pass(es), {self.evaluations} evaluation(s)",
        ]
        for name in self.fitted_fields:
            lines.append(f"    {name:<32s} = {getattr(self.profile, name):.6f}")
        if self.skipped_fields:
            lines.append(
                "  insensitive for this stream: "
                + ", ".join(self.skipped_fields)
            )
        lines.append(f"  fitted profile fingerprint {self.profile.fingerprint()[:12]}")
        return "\n".join(lines)


def fit_calibration(
    telemetry: TelemetryStream,
    *,
    topology: NodeTopology | None = None,
    base: CalibrationProfile | None = None,
    fields: Sequence[str] | None = None,
    max_passes: int = 4,
    tol: float = 1e-10,
    xtol: float = 1e-5,
) -> CalibrationFit:
    """Fit efficiency constants so the model reproduces ``telemetry``.

    ``fields`` narrows the fit to a subset of :data:`FIT_BOUNDS` (e.g.
    just the SDMA efficiencies when only copy telemetry is trusted);
    by default every fittable field the stream is actually sensitive
    to participates.  ``xtol`` is the line-search resolution in field
    units, ``tol`` the relative pass-over-pass improvement below which
    coordinate descent stops.
    """
    if not telemetry.records:
        raise TelemetryError("cannot calibrate against an empty telemetry stream")
    if max_passes < 1:
        raise CalibrationError(f"max_passes must be >= 1, got {max_passes!r}")
    topology = resolve_default_topology(topology)
    base = base if base is not None else DEFAULT_CALIBRATION
    if fields is None:
        candidates = sorted(FIT_BOUNDS)
    else:
        candidates = list(dict.fromkeys(fields))
        unknown = [name for name in candidates if name not in FIT_BOUNDS]
        if unknown:
            raise CalibrationError(
                f"not fittable field(s): {', '.join(unknown)} "
                f"(fittable: {', '.join(sorted(FIT_BOUNDS))})"
            )

    objective = _Objective(telemetry.records, topology)
    base_value = objective(base)
    floor = _SENSITIVITY_FLOOR * max(base_value, 1e-30)

    active: list[str] = []
    skipped: list[str] = []
    for name in candidates:
        lo, hi = FIT_BOUNDS[name]
        value = getattr(base, name)
        delta = 0.0
        for factor in (1.0 - _PROBE_STEP, 1.0 + _PROBE_STEP):
            probe = min(max(value * factor, lo), hi)
            if probe == value:
                continue
            delta = max(delta, abs(objective(base.with_(**{name: probe})) - base_value))
        if delta > floor:
            active.append(name)
        else:
            skipped.append(name)

    profile = base
    best = base_value
    passes = 0
    for _ in range(max_passes):
        passes += 1
        pass_start = best
        for name in active:
            lo, hi = FIT_BOUNDS[name]
            current = profile

            def line(x: float, _name: str = name, _profile: CalibrationProfile = current) -> float:
                return objective(_profile.with_(**{_name: x}))

            x, fx = _golden_section(line, lo, hi, xtol=xtol)
            if fx < best:
                profile = profile.with_(**{name: x})
                best = fx
        if pass_start - best <= tol * max(pass_start, 1e-30):
            break

    return CalibrationFit(
        profile=profile,
        base_fingerprint=base.fingerprint(),
        telemetry_name=telemetry.name,
        telemetry_fingerprint=telemetry.fingerprint(),
        fitted_fields=tuple(active),
        skipped_fields=tuple(skipped),
        initial_rms=objective.rms(base_value),
        final_rms=objective.rms(best),
        evaluations=objective.evaluations,
        passes=passes,
        record_count=len(telemetry.records),
    )

"""Digital-twin shadow mode.

Replays machine telemetry through the simulator and measures *drift* —
the relative error between what the model predicts and what the
machine reported — per link, per tier and per interface; and fits the
calibration profile's efficiency constants to minimize it.

Three layers:

- :mod:`repro.twin.schema` — the ``repro-telemetry/1`` JSONL record
  format with strict validation;
- :mod:`repro.twin.replay` — the windowed shadow replayer and its
  drift ledger;
- :mod:`repro.twin.calibrate` — the deterministic auto-calibrator.

:mod:`repro.twin.synthesize` closes the loop without hardware: it
turns any registered figure artifact into a synthetic stream whose
round trip (synthesize → replay → calibrate) is exact.
"""

from .calibrate import FIT_BOUNDS, CalibrationFit, fit_calibration
from .replay import (
    DEFAULT_ALERT_THRESHOLD,
    DriftStat,
    ShadowReplayer,
    ShadowReport,
    shadow_replay,
)
from .schema import (
    LATENCY_RECORD_BYTES,
    TELEMETRY_SCHEMA,
    TelemetryRecord,
    TelemetryStream,
    TelemetryWindow,
    load_telemetry,
    loads_telemetry,
    stream_from_records,
)
from .synthesize import perturbed_profile, synthesize_telemetry

__all__ = [
    "TELEMETRY_SCHEMA",
    "LATENCY_RECORD_BYTES",
    "DEFAULT_ALERT_THRESHOLD",
    "FIT_BOUNDS",
    "TelemetryRecord",
    "TelemetryStream",
    "TelemetryWindow",
    "load_telemetry",
    "loads_telemetry",
    "stream_from_records",
    "DriftStat",
    "ShadowReport",
    "ShadowReplayer",
    "shadow_replay",
    "CalibrationFit",
    "fit_calibration",
    "perturbed_profile",
    "synthesize_telemetry",
]

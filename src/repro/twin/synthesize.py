"""Synthetic telemetry: turn a figure artifact into a measured stream.

Real Infinity Fabric telemetry needs an MI250X node; the test bed and
the CI smoke jobs don't have one.  What they do have is the simulator
itself: running an artifact's sweep points under a *generator* profile
produces exactly the durations a machine behaving like that profile
would report.  :func:`synthesize_telemetry` does that — it decomposes
any of the registered figure artifacts into sim points, re-executes
each mappable point under the generator profile, and emits a
``repro-telemetry/1`` stream with deterministic timestamps.

This closes the round trip the twin is tested by:

- *unperturbed* synthesis replays with zero drift under the default
  profile (the replayer runs the identical simulations, and JSON
  floats round-trip exactly);
- synthesis under a *perturbed* profile (``perturb={"field": factor}``)
  yields a stream whose replay drift localizes to the perturbed
  links/interfaces, and whose auto-calibration recovers the perturbed
  constants.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping

from .. import figures
from ..core.calibration import CalibrationProfile, DEFAULT_CALIBRATION
from ..errors import TelemetryError
from ..runner import SimPoint
from ..topology.node import NodeTopology
from .schema import TelemetryRecord, TelemetryStream, stream_from_records

#: Idle gap inserted between consecutive synthetic records, seconds.
DEFAULT_RECORD_GAP = 1e-4


def _transfer_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    return {
        "src": kwargs["src_gcd"],
        "dst": kwargs["dst_gcd"],
        "bytes": kwargs["size"],
    }


def _peer_copy_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    return {
        "src": kwargs["src_gcd"],
        "dst": kwargs["dst_gcd"],
        "bytes": kwargs["size"],
        "peer_access": False,
    }


def _latency_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    return {
        "src": kwargs["src_gcd"],
        "dst": kwargs["dst_gcd"],
        "repetitions": kwargs.get("repetitions", 1),
    }


def _h2d_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    return {
        "interface": kwargs["interface"],
        "gcd": kwargs.get("gcd", 0),
        "bytes": kwargs["size"],
    }


def _local_stream_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    gcd = kwargs.get("gcd", 0)
    return {"executor": gcd, "data": gcd, "bytes": kwargs["size"]}


def _remote_stream_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    return {
        "executor": kwargs["executor_gcd"],
        "data": kwargs["data_gcd"],
        "bytes": kwargs["size"],
    }


def _host_stream_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    gcds = tuple(kwargs["placement"])
    if len(set(gcds)) != len(gcds):
        return None  # duplicate placements have no telemetry encoding
    return {"gcds": gcds, "bytes": kwargs["size"]}


def _rccl_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    return {
        "library": "rccl",
        "collective": kwargs["collective"],
        "ranks": kwargs["num_threads"],
        "bytes": kwargs["message_bytes"],
    }


def _osu_collective_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    return {
        "library": "mpi",
        "collective": kwargs["collective"],
        "ranks": kwargs["num_partners"],
        "bytes": kwargs["message_bytes"],
    }


def _osu_bw_fields(kwargs: dict[str, Any]) -> dict[str, Any] | None:
    return {
        "src": kwargs["src_gcd"],
        "dst": kwargs["dst_gcd"],
        "bytes": kwargs["message_bytes"],
        "sdma": kwargs.get("sdma_enabled", True),
    }


#: fn path -> (record kind, kwargs translator).  The inverse of
#: :func:`repro.twin.replay.record_point`: a point whose fn appears
#: here maps losslessly onto a telemetry record that replays through
#: the very same function.
_POINT_KINDS: dict[str, tuple[str, Callable[[dict[str, Any]], dict[str, Any] | None]]] = {
    "repro.bench_suites.p2p_matrix:measure_pair_bandwidth": ("transfer", _transfer_fields),
    "repro.bench_suites.comm_scope:measure_peer_copy": ("transfer", _peer_copy_fields),
    "repro.bench_suites.p2p_matrix:measure_pair_latency": ("latency", _latency_fields),
    "repro.bench_suites.comm_scope:measure_h2d": ("h2d", _h2d_fields),
    "repro.bench_suites.stream:local_stream_copy": ("stream", _local_stream_fields),
    "repro.bench_suites.stream:remote_stream_copy": ("stream", _remote_stream_fields),
    "repro.bench_suites.stream:multi_gpu_cpu_stream": ("host_stream", _host_stream_fields),
    "repro.bench_suites.rccl_tests:rccl_collective_latency": ("collective", _rccl_fields),
    "repro.bench_suites.osu:osu_collective_latency": ("collective", _osu_collective_fields),
    "repro.bench_suites.osu:osu_bw": ("mpi", _osu_bw_fields),
}


def perturbed_profile(
    base: CalibrationProfile, perturb: Mapping[str, float] | None
) -> CalibrationProfile:
    """Apply multiplicative factors to profile fields.

    ``perturb={"sdma_xgmi_efficiency": 1.1}`` scales that constant by
    10 % — the shape used to emulate a machine whose fabric behaves a
    calibrated amount better or worse than the paper's testbed.
    """
    if not perturb:
        return base
    changes: dict[str, object] = {}
    for name, factor in perturb.items():
        if not hasattr(base, name):
            raise TelemetryError(f"unknown calibration field {name!r} in perturb")
        value = getattr(base, name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TelemetryError(
                f"calibration field {name!r} is not a scalar, cannot perturb"
            )
        changes[name] = type(value)(value * factor)
    return base.with_(**changes)


def _duration_from_output(kind: str, fields: dict[str, Any], output: float) -> float:
    if output <= 0:
        raise TelemetryError(
            f"synthesized {kind} point produced a non-positive output {output!r}"
        )
    if kind in ("transfer", "mpi", "h2d"):
        return fields["bytes"] / output
    if kind == "stream":
        return 2.0 * fields["bytes"] / output
    if kind == "host_stream":
        return len(fields["gcds"]) * 2.0 * fields["bytes"] / output
    return output


def synthesize_telemetry(
    artifact_id: str,
    *,
    perturb: Mapping[str, float] | None = None,
    calibration: CalibrationProfile | None = None,
    topology: NodeTopology | None = None,
    start: float = 0.0,
    gap: float = DEFAULT_RECORD_GAP,
    **params: Any,
) -> TelemetryStream:
    """Synthesize a telemetry stream from a figure artifact's points.

    Every sweep point of ``artifact_id`` whose measurement function
    has a telemetry encoding is re-executed under the (optionally
    perturbed) generator profile; its output becomes the record's
    measured duration and bandwidth.  Timestamps are deterministic:
    records run back to back from ``start`` with ``gap`` seconds of
    idle between them.  Extra ``params`` flow into the artifact's
    sweep decomposition (sizes, subsets, …).
    """
    if gap < 0:
        raise TelemetryError(f"record gap must be >= 0, got {gap!r}")
    if start < 0:
        raise TelemetryError(f"start time must be >= 0, got {start!r}")
    eid = figures.canonical_id(artifact_id)
    base = calibration if calibration is not None else DEFAULT_CALIBRATION
    profile = perturbed_profile(base, perturb)
    records: list[TelemetryRecord] = []
    t = float(start)
    skipped = 0
    for point in figures.sweep_points(eid, **params):
        entry = _POINT_KINDS.get(point.fn)
        if entry is None:
            skipped += 1
            continue
        kind, translate = entry
        fields = translate(point.kwargs)
        if fields is None:
            skipped += 1
            continue
        # Rebuild rather than mutate: figure decompositions may not
        # accept a calibration parameter themselves (fig06's doesn't),
        # but every measurement function does.
        shadow = SimPoint.make(
            point.experiment_id,
            point.label,
            point.fn,
            **{**point.kwargs, "topology": topology, "calibration": profile},
        )
        output = float(shadow.execute())
        duration = _duration_from_output(kind, fields, output)
        bandwidth = output if kind in ("transfer", "mpi", "h2d", "stream", "host_stream") else None
        records.append(
            TelemetryRecord(
                t=t,
                kind=kind,
                duration=duration,
                bandwidth=bandwidth,
                fields=tuple(sorted(fields.items(), key=lambda kv: kv[0])),
            )
        )
        t += duration + gap
    if not records:
        raise TelemetryError(
            f"artifact {eid!r} decomposes into no telemetry-mappable points "
            f"({skipped} point(s) skipped)"
        )
    generator = json.dumps(
        {
            "artifact": eid,
            "calibration_fingerprint": profile.fingerprint(),
            "perturb": dict(perturb) if perturb else None,
            "skipped_points": skipped,
        },
        sort_keys=True,
    )
    return stream_from_records(
        records, name=f"synthetic/{eid}", generator=generator
    )

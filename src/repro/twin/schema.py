"""Telemetry streams: the ``repro-telemetry/1`` JSONL record schema.

A telemetry stream is what a real machine would log about its data
movement — timestamped transfers and collectives with measured
durations — and what the digital twin replays through the simulator to
measure *drift* (predicted vs actual).  The file format is JSON Lines:
a header object followed by one record object per line::

    {"schema": "repro-telemetry/1", "name": "frontier-node-telemetry"}
    {"t": 0.0, "kind": "transfer", "src": 0, "dst": 4,
     "bytes": 268435456, "duration": 0.00716, "bandwidth": 3.75e10}
    {"t": 0.008, "kind": "collective", "library": "rccl",
     "collective": "allreduce", "ranks": 8, "bytes": 1048576,
     "duration": 6.1e-05}

Record kinds map 1:1 onto the bench-suite measurement functions the
replayer re-simulates (see :mod:`repro.twin.replay`):

=============  ====================================================
kind           required fields (beyond ``t``/``duration``)
=============  ====================================================
``transfer``   ``src``, ``dst``, ``bytes`` (+ optional
               ``peer_access``, default true)
``latency``    ``src``, ``dst``, ``repetitions`` (16 B ping)
``h2d``        ``interface``, ``gcd``, ``bytes``
``stream``     ``executor``, ``data``, ``bytes`` (zero-copy kernel;
               ``executor == data`` means local HBM STREAM)
``host_stream``  ``gcds`` (list), ``bytes`` (Listing-1 kernels)
``collective``   ``library`` (``rccl``/``mpi``), ``collective``,
               ``ranks``, ``bytes``
``mpi``        ``src``, ``dst``, ``bytes`` (+ optional ``sdma``,
               default true)
=============  ====================================================

``bandwidth`` (bytes/s) is optional and informative: when present it
must agree with the kind's duration↔bandwidth inversion to within one
part in 10⁶.  Validation is strict in the :mod:`repro.topology.schema`
style — unknown fields, wrong types and impossible values are all
:class:`~repro.errors.TelemetryError`, because a typo must not
silently change what a record claims the machine did.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import TelemetryError

#: Bumped when the record encoding itself changes.
TELEMETRY_SCHEMA = "repro-telemetry/1"

#: Transfer size of a ``latency`` record (the paper's 16 B ping).
LATENCY_RECORD_BYTES = 16

#: Allowed relative disagreement of the informative ``bandwidth``
#: field with the duration-derived value.
BANDWIDTH_CONSISTENCY_RTOL = 1e-6

_HEADER_FIELDS = {"schema", "name", "generator"}

#: Per-kind required / optional record fields (beyond t, kind,
#: duration, bandwidth which every record carries).
_KIND_FIELDS: dict[str, tuple[set, set]] = {
    "transfer": ({"src", "dst", "bytes"}, {"peer_access"}),
    "latency": ({"src", "dst", "repetitions"}, set()),
    "h2d": ({"interface", "gcd", "bytes"}, set()),
    "stream": ({"executor", "data", "bytes"}, set()),
    "host_stream": ({"gcds", "bytes"}, set()),
    "collective": ({"library", "collective", "ranks", "bytes"}, set()),
    "mpi": ({"src", "dst", "bytes"}, {"sdma"}),
}

_COMMON_FIELDS = {"t", "kind", "duration", "bandwidth"}

_H2D_INTERFACES = (
    "pageable_memcpy",
    "pinned_memcpy",
    "managed_zerocopy",
    "managed_migration",
)

_COLLECTIVE_LIBRARIES = ("rccl", "mpi")


def _require_number(entry: Mapping[str, Any], key: str, what: str) -> float:
    value = entry[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TelemetryError(f"{what} field {key!r} must be a number, got {value!r}")
    return float(value)


def _require_int(entry: Mapping[str, Any], key: str, what: str) -> int:
    value = entry[key]
    if not isinstance(value, int) or isinstance(value, bool):
        raise TelemetryError(f"{what} field {key!r} must be an integer, got {value!r}")
    return value


def _require_str(entry: Mapping[str, Any], key: str, what: str) -> str:
    value = entry[key]
    if not isinstance(value, str) or not value:
        raise TelemetryError(
            f"{what} field {key!r} must be a non-empty string, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class TelemetryRecord:
    """One measured operation of a telemetry stream.

    ``t`` is the event time (seconds since the stream's epoch) at which
    the operation started; ``duration`` is the measured wall time of
    the operation; ``fields`` holds the kind-specific payload as a
    sorted tuple of ``(name, value)`` pairs so records are hashable and
    canonical.
    """

    t: float
    kind: str
    duration: float
    bandwidth: float | None = None
    fields: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    @property
    def kwargs(self) -> dict[str, Any]:
        """Kind-specific payload as a plain dict."""
        return dict(self.fields)

    @property
    def end(self) -> float:
        """Event time at which the operation finished."""
        return self.t + self.duration

    def get(self, name: str, default: Any = None) -> Any:
        """One kind-specific field (``default`` when absent)."""
        return self.kwargs.get(name, default)

    def to_json(self) -> dict[str, Any]:
        """The record's JSON object (one line of the stream)."""
        payload: dict[str, Any] = {"t": self.t, "kind": self.kind}
        for name, value in self.fields:
            payload[name] = list(value) if isinstance(value, tuple) else value
        payload["duration"] = self.duration
        if self.bandwidth is not None:
            payload["bandwidth"] = self.bandwidth
        return payload


def implied_bandwidth(record: TelemetryRecord) -> float | None:
    """Bytes/s the record's duration implies under its kind's convention.

    ``stream``/``host_stream`` kinds count read+write traffic (the
    STREAM convention, 2·S per kernel); ``latency`` and ``collective``
    records have no meaningful bandwidth and return ``None``.
    """
    kwargs = record.kwargs
    if record.duration <= 0:
        return None
    if record.kind in ("transfer", "mpi", "h2d"):
        return kwargs["bytes"] / record.duration
    if record.kind == "stream":
        return 2.0 * kwargs["bytes"] / record.duration
    if record.kind == "host_stream":
        return len(kwargs["gcds"]) * 2.0 * kwargs["bytes"] / record.duration
    return None


def record_from_json(entry: Any, *, line: int | None = None) -> TelemetryRecord:
    """Parse one record object; raises :class:`TelemetryError`."""
    where = f"telemetry record (line {line})" if line else "telemetry record"
    if not isinstance(entry, Mapping):
        raise TelemetryError(f"{where} must be an object, got {entry!r}")
    kind = entry.get("kind")
    if not isinstance(kind, str):
        raise TelemetryError(f"{where} is missing a string 'kind': {dict(entry)!r}")
    try:
        required, optional = _KIND_FIELDS[kind]
    except KeyError:
        known = ", ".join(sorted(_KIND_FIELDS))
        raise TelemetryError(
            f"{where}: unknown kind {kind!r} (known: {known})"
        ) from None
    allowed = _COMMON_FIELDS | required | optional
    unknown = set(entry) - allowed
    if unknown:
        raise TelemetryError(f"{where} ({kind}) has unknown fields {sorted(unknown)}")
    for name in ("t", "duration"):
        if name not in entry:
            raise TelemetryError(f"{where} ({kind}) is missing {name!r}")
    missing = required - set(entry)
    if missing:
        raise TelemetryError(f"{where} ({kind}) is missing {sorted(missing)}")

    t = _require_number(entry, "t", where)
    if t < 0:
        raise TelemetryError(f"{where}: t must be non-negative, got {t!r}")
    duration = _require_number(entry, "duration", where)
    if duration <= 0:
        raise TelemetryError(f"{where}: duration must be positive, got {duration!r}")

    fields: dict[str, Any] = {}
    for name in ("src", "dst", "gcd", "executor", "data", "ranks", "repetitions"):
        if name in entry:
            value = _require_int(entry, name, where)
            if value < 0 or (name in ("ranks", "repetitions") and value < 1):
                raise TelemetryError(f"{where}: {name}={value!r} out of range")
            fields[name] = value
    if "bytes" in entry:
        size = _require_int(entry, "bytes", where)
        if size <= 0:
            raise TelemetryError(f"{where}: bytes must be positive, got {size!r}")
        fields["bytes"] = size
    if "gcds" in entry:
        gcds = entry["gcds"]
        if (
            not isinstance(gcds, (list, tuple))
            or not gcds
            or any(isinstance(g, bool) or not isinstance(g, int) or g < 0 for g in gcds)
        ):
            raise TelemetryError(
                f"{where}: gcds must be a non-empty list of GCD indices, "
                f"got {gcds!r}"
            )
        if len(set(gcds)) != len(gcds):
            raise TelemetryError(f"{where}: gcds has duplicates: {gcds!r}")
        fields["gcds"] = tuple(gcds)
    if "interface" in entry:
        interface = _require_str(entry, "interface", where)
        if interface not in _H2D_INTERFACES:
            raise TelemetryError(
                f"{where}: unknown h2d interface {interface!r} "
                f"(known: {', '.join(_H2D_INTERFACES)})"
            )
        fields["interface"] = interface
    if "library" in entry:
        library = _require_str(entry, "library", where)
        if library not in _COLLECTIVE_LIBRARIES:
            raise TelemetryError(
                f"{where}: unknown collective library {library!r} "
                f"(known: {', '.join(_COLLECTIVE_LIBRARIES)})"
            )
        fields["library"] = library
    if "collective" in entry:
        fields["collective"] = _require_str(entry, "collective", where)
    for name in ("peer_access", "sdma"):
        if name in entry:
            if not isinstance(entry[name], bool):
                raise TelemetryError(
                    f"{where}: {name} must be a boolean, got {entry[name]!r}"
                )
            fields[name] = entry[name]
    if kind in ("transfer", "latency", "mpi") and fields["src"] == fields["dst"]:
        raise TelemetryError(f"{where}: src and dst must differ for kind {kind!r}")

    bandwidth = None
    if "bandwidth" in entry:
        bandwidth = _require_number(entry, "bandwidth", where)
        if bandwidth <= 0:
            raise TelemetryError(
                f"{where}: bandwidth must be positive, got {bandwidth!r}"
            )

    record = TelemetryRecord(
        t=t,
        kind=kind,
        duration=duration,
        bandwidth=bandwidth,
        fields=tuple(sorted(fields.items())),
    )
    if bandwidth is not None:
        implied = implied_bandwidth(record)
        if implied is not None and abs(bandwidth - implied) > (
            BANDWIDTH_CONSISTENCY_RTOL * implied
        ):
            raise TelemetryError(
                f"{where}: bandwidth {bandwidth!r} disagrees with the "
                f"duration-implied value {implied!r} (informative field; "
                f"drop it or fix the duration)"
            )
    return record


@dataclass(frozen=True)
class TelemetryStream:
    """An ordered, validated sequence of telemetry records."""

    records: tuple[TelemetryRecord, ...]
    name: str = "telemetry"
    generator: str | None = None

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.records, key=lambda r: (r.t, r.fields)))
        object.__setattr__(self, "records", ordered)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def span(self) -> float:
        """Event-time extent (first start to last end), 0 when empty."""
        if not self.records:
            return 0.0
        return max(r.end for r in self.records) - self.records[0].t

    def fingerprint(self) -> str:
        """Stable content hash over the records.

        Excludes the display ``name`` and ``generator`` (renaming a
        file must not change what the stream claims was measured), so
        it can key caches and provenance blocks the way topology and
        calibration fingerprints do.
        """
        payload = json.dumps(
            [TELEMETRY_SCHEMA, [r.to_json() for r in self.records]],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def windows(self, window_seconds: float | None = None) -> "list[TelemetryWindow]":
        """Partition the stream into event-time windows.

        Window *i* covers ``[i·W, (i+1)·W)`` by record start time;
        empty windows are skipped.  ``None`` yields one window spanning
        the whole stream — the degenerate batch replay.
        """
        if not self.records:
            return []
        if window_seconds is None:
            return [
                TelemetryWindow(
                    index=0,
                    start=self.records[0].t,
                    end=max(r.end for r in self.records),
                    records=self.records,
                )
            ]
        if window_seconds <= 0:
            raise TelemetryError(
                f"window must be positive seconds, got {window_seconds!r}"
            )
        buckets: dict[int, list[TelemetryRecord]] = {}
        for record in self.records:
            buckets.setdefault(int(record.t // window_seconds), []).append(record)
        return [
            TelemetryWindow(
                index=index,
                start=index * window_seconds,
                end=(index + 1) * window_seconds,
                records=tuple(buckets[index]),
            )
            for index in sorted(buckets)
        ]

    # -- serialization ---------------------------------------------------

    def dumps(self) -> str:
        """Render the stream as ``repro-telemetry/1`` JSON Lines."""
        header: dict[str, Any] = {"schema": TELEMETRY_SCHEMA, "name": self.name}
        if self.generator is not None:
            header["generator"] = self.generator
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(record.to_json(), sort_keys=True) for record in self.records
        )
        return "\n".join(lines) + "\n"

    def dump(self, path: "str | Path") -> None:
        """Write the stream to a ``.jsonl`` file."""
        Path(path).write_text(self.dumps())

    def describe(self) -> str:
        """One-paragraph human summary."""
        kinds: dict[str, int] = {}
        for record in self.records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        by_kind = ", ".join(f"{n}× {k}" for k, n in sorted(kinds.items()))
        return (
            f"Telemetry {self.name!r}: {len(self.records)} record(s) over "
            f"{self.span:.6f} s ({by_kind or 'empty'}); "
            f"fingerprint {self.fingerprint()[:12]}"
        )


@dataclass(frozen=True)
class TelemetryWindow:
    """One event-time window of a stream."""

    index: int
    start: float
    end: float
    records: tuple[TelemetryRecord, ...]


def stream_from_records(
    records: Iterable[TelemetryRecord],
    *,
    name: str = "telemetry",
    generator: str | None = None,
) -> TelemetryStream:
    """Build a validated stream from already-constructed records."""
    return TelemetryStream(tuple(records), name=name, generator=generator)


def loads_telemetry(
    text: str, *, default_name: str = "telemetry"
) -> TelemetryStream:
    """Parse a ``repro-telemetry/1`` JSONL document from a string."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TelemetryError("telemetry stream is empty (no header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"telemetry header is not valid JSON: {exc}") from None
    if not isinstance(header, Mapping):
        raise TelemetryError(f"telemetry header must be an object, got {header!r}")
    unknown = set(header) - _HEADER_FIELDS
    if unknown:
        raise TelemetryError(f"telemetry header has unknown fields {sorted(unknown)}")
    schema = header.get("schema")
    if schema != TELEMETRY_SCHEMA:
        raise TelemetryError(
            f"unsupported telemetry schema {schema!r} "
            f"(this build reads {TELEMETRY_SCHEMA!r})"
        )
    name = header.get("name", default_name)
    if not isinstance(name, str) or not name:
        raise TelemetryError(f"telemetry name must be a non-empty string, got {name!r}")
    generator = header.get("generator")
    if generator is not None and not isinstance(generator, str):
        raise TelemetryError(f"telemetry generator must be a string, got {generator!r}")

    records = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(
                f"telemetry line {lineno} is not valid JSON: {exc}"
            ) from None
        records.append(record_from_json(entry, line=lineno))
    return TelemetryStream(tuple(records), name=name, generator=generator)


def load_telemetry(path: "str | Path") -> TelemetryStream:
    """Read a telemetry stream from a JSONL file.

    The display name defaults to the file stem when the header does not
    carry one; the name never enters the fingerprint.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TelemetryError(f"cannot read telemetry {path}: {exc}") from None
    return loads_telemetry(text, default_name=path.stem)

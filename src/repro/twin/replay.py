"""Windowed shadow replay: re-simulate telemetry, measure drift.

The digital-twin loop (OpenDT-style) applied to the data-movement
model: every telemetry record names an operation the machine measured;
the replayer re-simulates it as a picklable :class:`~repro.runner.SimPoint`
through the normal :class:`~repro.runner.SweepRunner` path — so
caching, spans and fault scenarios apply unchanged — and compares the
predicted duration against the measured one.  The relative error is
*drift*; it is attributed per link (the route's bottleneck edge), per
link tier and per interface, time-weighted by measured duration, and
accumulated into a ledger with configurable alert thresholds.

A record kind maps 1:1 onto a bench-suite measurement function (the
same functions the figure artifacts sweep), which is what makes the
synthetic round trip exact: telemetry synthesized from an artifact's
own points replays through the identical simulations and reports zero
drift under the generating profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..core.calibration import CalibrationProfile, DEFAULT_CALIBRATION
from ..errors import TelemetryError
from ..obs.metrics import MetricsRegistry, metric_name, resolve_metrics
from ..runner import SimPoint, SweepRunner
from ..topology.context import resolve_default as resolve_default_topology
from ..topology.node import NodeTopology
from ..topology.routing import route_between
from .schema import (
    LATENCY_RECORD_BYTES,
    TelemetryRecord,
    TelemetryStream,
    TelemetryWindow,
)

#: Default drift alert threshold: 5% absolute relative error.
DEFAULT_ALERT_THRESHOLD = 0.05


def record_point(
    record: TelemetryRecord,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    label_prefix: str = "shadow",
) -> SimPoint:
    """The :class:`SimPoint` that re-simulates one telemetry record.

    The mapping mirrors the figure sweeps' own point construction, so
    a replayed record and the artifact measurement it came from share
    one result-cache entry when their parameters agree.
    """
    kwargs = record.kwargs
    label = f"{label_prefix}/{record.kind}/{record.t:.9f}"
    if record.kind == "transfer":
        if kwargs.get("peer_access", True):
            return SimPoint.make(
                "shadow",
                label,
                "repro.bench_suites.p2p_matrix:measure_pair_bandwidth",
                src_gcd=kwargs["src"],
                dst_gcd=kwargs["dst"],
                size=kwargs["bytes"],
                topology=topology,
                calibration=calibration,
            )
        return SimPoint.make(
            "shadow",
            label,
            "repro.bench_suites.comm_scope:measure_peer_copy",
            src_gcd=kwargs["src"],
            dst_gcd=kwargs["dst"],
            size=kwargs["bytes"],
            topology=topology,
            calibration=calibration,
        )
    if record.kind == "latency":
        return SimPoint.make(
            "shadow",
            label,
            "repro.bench_suites.p2p_matrix:measure_pair_latency",
            src_gcd=kwargs["src"],
            dst_gcd=kwargs["dst"],
            repetitions=kwargs["repetitions"],
            topology=topology,
            calibration=calibration,
        )
    if record.kind == "h2d":
        return SimPoint.make(
            "shadow",
            label,
            "repro.bench_suites.comm_scope:measure_h2d",
            interface=kwargs["interface"],
            size=kwargs["bytes"],
            gcd=kwargs["gcd"],
            topology=topology,
            calibration=calibration,
        )
    if record.kind == "stream":
        if kwargs["executor"] == kwargs["data"]:
            return SimPoint.make(
                "shadow",
                label,
                "repro.bench_suites.stream:local_stream_copy",
                gcd=kwargs["executor"],
                size=kwargs["bytes"],
                topology=topology,
                calibration=calibration,
            )
        return SimPoint.make(
            "shadow",
            label,
            "repro.bench_suites.stream:remote_stream_copy",
            executor_gcd=kwargs["executor"],
            data_gcd=kwargs["data"],
            size=kwargs["bytes"],
            topology=topology,
            calibration=calibration,
        )
    if record.kind == "host_stream":
        return SimPoint.make(
            "shadow",
            label,
            "repro.bench_suites.stream:multi_gpu_cpu_stream",
            placement=tuple(kwargs["gcds"]),
            size=kwargs["bytes"],
            topology=topology,
            calibration=calibration,
        )
    if record.kind == "collective":
        if kwargs["library"] == "rccl":
            return SimPoint.make(
                "shadow",
                label,
                "repro.bench_suites.rccl_tests:rccl_collective_latency",
                collective=kwargs["collective"],
                num_threads=kwargs["ranks"],
                message_bytes=kwargs["bytes"],
                topology=topology,
                calibration=calibration,
            )
        return SimPoint.make(
            "shadow",
            label,
            "repro.bench_suites.osu:osu_collective_latency",
            collective=kwargs["collective"],
            num_partners=kwargs["ranks"],
            message_bytes=kwargs["bytes"],
            topology=topology,
            calibration=calibration,
        )
    if record.kind == "mpi":
        return SimPoint.make(
            "shadow",
            label,
            "repro.bench_suites.osu:osu_bw",
            src_gcd=kwargs["src"],
            dst_gcd=kwargs["dst"],
            message_bytes=kwargs["bytes"],
            sdma_enabled=kwargs.get("sdma", True),
            topology=topology,
            calibration=calibration,
        )
    raise TelemetryError(f"no replay mapping for record kind {record.kind!r}")


def predicted_duration(record: TelemetryRecord, output: float) -> float:
    """Convert a replayed point's output into a predicted duration.

    Inverts each measurement function's reporting convention —
    bandwidths (bytes/s, with the STREAM 2·S convention where it
    applies) back into seconds, latencies passed through.
    """
    kwargs = record.kwargs
    if output <= 0:
        raise TelemetryError(
            f"replayed {record.kind} record produced a non-positive "
            f"output {output!r}"
        )
    if record.kind in ("transfer", "mpi", "h2d"):
        return kwargs["bytes"] / output
    if record.kind == "stream":
        return 2.0 * kwargs["bytes"] / output
    if record.kind == "host_stream":
        return len(kwargs["gcds"]) * 2.0 * kwargs["bytes"] / output
    # latency / collective functions report seconds directly.
    return output


def record_bytes(record: TelemetryRecord) -> int:
    """Payload bytes a record moved (16 for the latency ping)."""
    if record.kind == "latency":
        return LATENCY_RECORD_BYTES
    return record.kwargs["bytes"]


def attribute_record(
    record: TelemetryRecord, topology: NodeTopology
) -> tuple[str | None, str | None, str]:
    """``(link name, tier name, interface)`` drift dimensions of a record.

    Point-to-point kinds attribute to the *bottleneck* link of the
    bandwidth-maximizing route (the edge whose capacity bounds the
    transfer — the same convention the hardware model uses to pick the
    rate tier); host-side kinds attribute to the GCD's CPU link; kinds
    that span many links at once (collectives) carry only the
    interface dimension.
    """
    kwargs = record.kwargs
    if record.kind in ("transfer", "latency", "mpi"):
        route = route_between(topology, kwargs["src"], kwargs["dst"])
        link = min(route.links, key=lambda l: l.capacity_per_direction)
        interface = {
            "transfer": "memcpy_peer",
            "latency": "memcpy_peer_latency",
            "mpi": "mpi_p2p",
        }[record.kind]
        return link.name, link.tier.name.lower(), interface
    if record.kind == "stream":
        if kwargs["executor"] == kwargs["data"]:
            return None, None, "hbm_stream"
        route = route_between(topology, kwargs["executor"], kwargs["data"])
        link = min(route.links, key=lambda l: l.capacity_per_direction)
        return link.name, link.tier.name.lower(), "kernel_stream"
    if record.kind == "h2d":
        link = topology.cpu_link_of_gcd(kwargs["gcd"])
        return link.name, link.tier.name.lower(), f"h2d/{kwargs['interface']}"
    if record.kind == "host_stream":
        # Listing-1 kernels stream over every placed GCD's CPU link;
        # attribute to the first for a stable single-link dimension.
        link = topology.cpu_link_of_gcd(kwargs["gcds"][0])
        return link.name, link.tier.name.lower(), "multi_gpu_stream"
    if record.kind == "collective":
        return None, None, f"{kwargs['library']}/{kwargs['collective']}"
    return None, None, record.kind


@dataclass
class DriftStat:
    """Accumulated drift of one ledger dimension value."""

    count: int = 0
    weight: float = 0.0  #: summed measured seconds (the time weights)
    _abs_integral: float = 0.0
    _signed_integral: float = 0.0
    max_abs: float = 0.0
    worst: float = 0.0  #: signed drift of the worst record

    def add(self, drift: float, weight: float) -> None:
        """Fold one record's signed relative drift in at ``weight`` seconds."""
        self.count += 1
        self.weight += weight
        self._abs_integral += abs(drift) * weight
        self._signed_integral += drift * weight
        if abs(drift) > self.max_abs:
            self.max_abs = abs(drift)
            self.worst = drift

    @property
    def mean_abs(self) -> float:
        """Time-weighted mean absolute relative error."""
        return self._abs_integral / self.weight if self.weight > 0 else 0.0

    @property
    def mean_signed(self) -> float:
        """Time-weighted mean signed relative error (bias)."""
        return self._signed_integral / self.weight if self.weight > 0 else 0.0

    def to_json(self) -> dict[str, Any]:
        """Plain JSON-able ledger entry."""
        return {
            "count": self.count,
            "weight_seconds": self.weight,
            "mean_abs_drift": self.mean_abs,
            "mean_signed_drift": self.mean_signed,
            "max_abs_drift": self.max_abs,
            "worst_drift": self.worst,
        }


@dataclass
class ShadowReport:
    """Everything one shadow replay learned."""

    telemetry_name: str
    telemetry_fingerprint: str
    calibration_fingerprint: str
    window_seconds: float | None
    alert_threshold: float
    overall: DriftStat
    by_link: dict[str, DriftStat]
    by_tier: dict[str, DriftStat]
    by_interface: dict[str, DriftStat]
    windows: list[dict[str, Any]]
    records: list[dict[str, Any]]
    alerts: list[dict[str, Any]] = field(default_factory=list)
    runner: dict[str, Any] | None = None

    @property
    def max_abs_drift(self) -> float:
        """Largest absolute per-record drift anywhere in the replay."""
        return self.overall.max_abs

    @property
    def max_link_drift(self) -> float:
        """Largest absolute drift over the per-link ledger."""
        return max((s.max_abs for s in self.by_link.values()), default=0.0)

    def to_json(self) -> dict[str, Any]:
        """Plain JSON-able report (the ``repro shadow --json`` payload)."""
        return {
            "schema": "repro-shadow/1",
            "telemetry": self.telemetry_name,
            "telemetry_fingerprint": self.telemetry_fingerprint,
            "calibration_fingerprint": self.calibration_fingerprint,
            "window_seconds": self.window_seconds,
            "alert_threshold": self.alert_threshold,
            "record_count": self.overall.count,
            "max_abs_drift": self.max_abs_drift,
            "overall": self.overall.to_json(),
            "by_link": {k: v.to_json() for k, v in sorted(self.by_link.items())},
            "by_tier": {k: v.to_json() for k, v in sorted(self.by_tier.items())},
            "by_interface": {
                k: v.to_json() for k, v in sorted(self.by_interface.items())
            },
            "windows": self.windows,
            "alerts": self.alerts,
            "records": self.records,
            "runner": self.runner,
        }

    def describe(self, *, top: int = 8) -> str:
        """Human-readable drift summary (the ``repro shadow`` output)."""
        lines = [
            f"Shadow replay of {self.telemetry_name!r}: "
            f"{self.overall.count} record(s), "
            f"{len(self.windows)} window(s)"
            + (
                f" of {self.window_seconds:g} s"
                if self.window_seconds is not None
                else ""
            ),
            f"  calibration {self.calibration_fingerprint[:12]}, "
            f"telemetry {self.telemetry_fingerprint[:12]}",
            f"  overall drift: mean |e| {self.overall.mean_abs:.3%}, "
            f"bias {self.overall.mean_signed:+.3%}, "
            f"max |e| {self.overall.max_abs:.3%}",
        ]
        ranked = sorted(
            self.by_link.items(), key=lambda kv: kv[1].max_abs, reverse=True
        )
        if ranked:
            shown = ranked[:top]
            lines.append(f"  per-link drift (top {len(shown)} of {len(ranked)}):")
            for name, stat in shown:
                flag = " ALERT" if stat.max_abs > self.alert_threshold else ""
                lines.append(
                    f"    {name:<28s} mean |e| {stat.mean_abs:>8.3%}  "
                    f"max |e| {stat.max_abs:>8.3%}  "
                    f"({stat.count} rec){flag}"
                )
        for title, ledger in (
            ("per-tier", self.by_tier),
            ("per-interface", self.by_interface),
        ):
            if ledger:
                lines.append(f"  {title} drift:")
                for name, stat in sorted(ledger.items()):
                    flag = " ALERT" if stat.max_abs > self.alert_threshold else ""
                    lines.append(
                        f"    {name:<28s} mean |e| {stat.mean_abs:>8.3%}  "
                        f"max |e| {stat.max_abs:>8.3%}  "
                        f"({stat.count} rec){flag}"
                    )
        if self.alerts:
            lines.append(
                f"  {len(self.alerts)} alert(s) above the "
                f"{self.alert_threshold:.1%} threshold"
            )
        else:
            lines.append(
                f"  no drift above the {self.alert_threshold:.1%} threshold"
            )
        return "\n".join(lines)


class ShadowReplayer:
    """Replays a telemetry stream window by window.

    ``runner`` routes the per-window point grids through the normal
    sweep machinery (process pool, result cache, span capture);
    without one, points execute serially in-process.  ``metrics``
    receives ``drift/...`` time series — the drift level bracketed
    over each record's measured interval, so the registry's
    time-weighted means match the ledger's.
    """

    def __init__(
        self,
        telemetry: TelemetryStream,
        *,
        topology: NodeTopology | None = None,
        calibration: CalibrationProfile | None = None,
        window: float | None = None,
        alert_threshold: float = DEFAULT_ALERT_THRESHOLD,
        runner: SweepRunner | None = None,
        metrics: "MetricsRegistry | bool | None" = None,
    ) -> None:
        if alert_threshold <= 0:
            raise TelemetryError(
                f"alert threshold must be positive, got {alert_threshold!r}"
            )
        self.telemetry = telemetry
        self.topology = resolve_default_topology(topology)
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.window = window
        self.alert_threshold = alert_threshold
        self.runner = runner
        self.metrics = resolve_metrics(metrics)

    def replay(self) -> ShadowReport:
        """Re-simulate every window and assemble the drift ledger."""
        report = ShadowReport(
            telemetry_name=self.telemetry.name,
            telemetry_fingerprint=self.telemetry.fingerprint(),
            calibration_fingerprint=self.calibration.fingerprint(),
            window_seconds=self.window,
            alert_threshold=self.alert_threshold,
            overall=DriftStat(),
            by_link={},
            by_tier={},
            by_interface={},
            windows=[],
            records=[],
        )
        for window in self.telemetry.windows(self.window):
            self._replay_window(window, report)
        for dimension, ledger in (
            ("link", report.by_link),
            ("tier", report.by_tier),
            ("interface", report.by_interface),
        ):
            for key, stat in sorted(ledger.items()):
                if stat.max_abs > self.alert_threshold:
                    report.alerts.append(
                        {
                            "dimension": dimension,
                            "key": key,
                            "max_abs_drift": stat.max_abs,
                            "worst_drift": stat.worst,
                            "threshold": self.alert_threshold,
                        }
                    )
        if self.runner is not None:
            report.runner = self.runner.stats.as_dict()
        return report

    def _replay_window(self, window: TelemetryWindow, report: ShadowReport) -> None:
        points = [
            record_point(
                record,
                topology=self.topology,
                calibration=self.calibration,
                label_prefix=f"w{window.index}",
            )
            for record in window.records
        ]
        if self.runner is not None:
            outputs = self.runner.run_points(points)
        else:
            outputs = [point.execute() for point in points]
        stat = DriftStat()
        for record, output in zip(window.records, outputs):
            predicted = predicted_duration(record, output)
            drift = (predicted - record.duration) / record.duration
            link, tier, interface = attribute_record(record, self.topology)
            stat.add(drift, record.duration)
            report.overall.add(drift, record.duration)
            if link is not None:
                report.by_link.setdefault(link, DriftStat()).add(
                    drift, record.duration
                )
            if tier is not None:
                report.by_tier.setdefault(tier, DriftStat()).add(
                    drift, record.duration
                )
            report.by_interface.setdefault(interface, DriftStat()).add(
                drift, record.duration
            )
            self._publish(record, drift, link, tier, interface)
            report.records.append(
                {
                    "t": record.t,
                    "kind": record.kind,
                    "window": window.index,
                    "link": link,
                    "tier": tier,
                    "interface": interface,
                    "bytes": record_bytes(record),
                    "measured_duration": record.duration,
                    "predicted_duration": predicted,
                    "drift": drift,
                }
            )
        report.windows.append(
            {
                "index": window.index,
                "start": window.start,
                "end": window.end,
                "records": len(window.records),
                "mean_abs_drift": stat.mean_abs,
                "max_abs_drift": stat.max_abs,
            }
        )

    def _publish(
        self,
        record: TelemetryRecord,
        drift: float,
        link: str | None,
        tier: str | None,
        interface: str,
    ) -> None:
        metrics = self.metrics
        if not metrics:
            return
        for dimension, key in (
            ("link", link),
            ("tier", tier),
            ("interface", interface),
        ):
            if key is None:
                continue
            series = metrics.timeseries(metric_name(("drift", dimension, key)))
            # Bracket the drift level over the record's measured
            # interval so the series' time-weighted mean integrates
            # |drift| · duration, matching the ledger's weights.
            series.observe(record.t, abs(drift))
            series.observe(record.end, 0.0)


def shadow_replay(
    telemetry: TelemetryStream,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    window: float | None = None,
    alert_threshold: float = DEFAULT_ALERT_THRESHOLD,
    runner: SweepRunner | None = None,
    metrics: "MetricsRegistry | bool | None" = None,
) -> ShadowReport:
    """One-call shadow replay (see :class:`ShadowReplayer`)."""
    return ShadowReplayer(
        telemetry,
        topology=topology,
        calibration=calibration,
        window=window,
        alert_threshold=alert_threshold,
        runner=runner,
        metrics=metrics,
    ).replay()

"""Structured timeline tracing.

Benchmarks don't need tracing to produce their numbers (those come off
the simulated clock), but traces make the simulator explainable: every
transfer, kernel, fault and collective step can be recorded and dumped
as a timeline, which the examples use to show *why* a placement or
interface behaves the way it does.

Tracing is designed to cost (near) nothing when disabled: hot call
sites guard with ``if tracer:`` / ``if tracer.enabled:`` so that no
:class:`TraceRecord` — and no argument tuple or detail dict — is ever
constructed for a disabled tracer.  An enabled tracer can optionally
run as a bounded ring buffer (``capacity=N``) so long sweeps keep only
the most recent records instead of growing without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..units import format_time


@dataclass(frozen=True)
class TraceRecord:
    """One timeline entry.

    ``category`` groups records (``"memcpy"``, ``"kernel"``,
    ``"fault"``, ``"mpi"``, ``"rccl"``…); ``detail`` carries free-form
    structured attributes.
    """

    start: float
    end: float
    category: str
    label: str
    detail: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """``end - start`` of the record."""
        return self.end - self.start

    def format(self) -> str:
        """One aligned timeline line."""
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        window = f"[{format_time(self.start)} .. {format_time(self.end)}]"
        return f"{window} {self.category}:{self.label} {attrs}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` entries; disabled by default.

    A disabled tracer accepts records and drops them, so call sites
    never *need* to branch — but hot paths should guard with
    ``if tracer:`` (equivalent to ``tracer.enabled``) to avoid even
    building the record's arguments.

    ``capacity`` bounds retention: with a capacity, the tracer is a
    ring buffer keeping only the newest records; without one it keeps
    everything.
    """

    __slots__ = ("enabled", "capacity", "_records", "dropped")

    def __init__(self, enabled: bool = False, *, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.enabled = enabled
        self.capacity = capacity
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        #: Records evicted by the ring buffer since the last clear().
        self.dropped = 0

    def __bool__(self) -> bool:
        """Truthiness == enabled, so call sites can ``if tracer:``."""
        return self.enabled

    def record(
        self,
        start: float,
        end: float,
        category: str,
        label: str,
        **detail: Any,
    ) -> None:
        """Append a record (no-op when disabled)."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError("trace record ends before it starts")
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.dropped += 1
        records.append(TraceRecord(start, end, category, label, detail))

    def records(self, category: str | None = None) -> list[TraceRecord]:
        """Records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def timeline(self) -> str:
        """Human-readable dump, sorted by start time."""
        ordered = sorted(self._records, key=lambda r: (r.start, r.end))
        return "\n".join(record.format() for record in ordered)

"""Numeric backend selection for the flow-integration hot loop.

:class:`~repro.sim.flow.FlowNetwork` integrates constant-rate
intervals (``remaining -= rate * dt``), finds the next completion
(``min(remaining / rate)``), and detects finished flows
(``remaining <= threshold``) on every topology change.  Three
interchangeable implementations exist:

``python``
    Per-flow attribute loops — no dependencies, the reference
    semantics.
``vectorized``
    The same arithmetic as one NumPy float64 array operation per
    interval.  Element-wise IEEE-754 ops (no reassociation, no FMA
    contraction), so results are **bit-identical** to the Python loop;
    the differential suite in ``tests/sim/test_backend_differential.py``
    enforces this property.
``compiled``
    The vectorized arrays driven through numba ``@njit`` kernels
    (LLVM without fast-math, so still bit-identical).  Falls back to
    ``vectorized`` automatically when numba is not installed.

Because all backends produce bit-identical results, the backend choice
deliberately does **not** enter sweep-cache fingerprints — a cache
entry written under one backend is valid under every other.

Selection precedence: explicit ``backend=`` argument, then the
``REPRO_BACKEND`` environment variable, then :data:`DEFAULT_BACKEND`.
Requesting an unavailable backend *degrades* (compiled → vectorized →
python) rather than failing, so the same script runs on a bare
interpreter and a numba-equipped one; an unknown name is still an
error.
"""

from __future__ import annotations

import os
from typing import Any, Callable, NamedTuple

from ..errors import ConfigurationError

try:  # numpy is a hard dependency of the package, but stay importable
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _resolve internals
    _np = None

#: Recognised backend names, in degradation order (strongest first).
BACKENDS = ("compiled", "vectorized", "python")

#: Used when neither ``backend=`` nor ``REPRO_BACKEND`` says otherwise.
DEFAULT_BACKEND = "vectorized"

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendChoice(NamedTuple):
    """What was asked for and what will actually run."""

    requested: str
    effective: str

    @property
    def degraded(self) -> bool:
        """Whether the request could not be honoured as-is."""
        return self.requested != self.effective


#: Recognised fairshare solver strategies, strongest first.
#:
#: ``dirty``
#:     Dirty-set trace replay on churn *and* epoch-deferred re-levels
#:     (all same-timestamp flow adds/removes/capacity changes coalesce
#:     into one solve).  The default.
#: ``eager``
#:     Dirty-set trace replay, but one re-level per churn event — the
#:     deferral-off half of the optimization, kept for differential
#:     tests and diagnosis.
#: ``full``
#:     Per-component re-solve on every event (the pre-dirty-set
#:     behaviour) — the perf baseline.
#:
#: Like backends, every strategy is bit-identical by construction
#: (``tests/sim/test_solver_differential.py`` is the proof), so the
#: strategy deliberately stays out of sweep-cache fingerprints.
SOLVER_STRATEGIES = ("dirty", "eager", "full")

#: Used when neither ``solver=`` nor ``REPRO_SOLVER`` says otherwise.
DEFAULT_SOLVER = "dirty"

#: Environment variable consulted when no explicit strategy is passed.
SOLVER_ENV_VAR = "REPRO_SOLVER"


class SolverChoice(NamedTuple):
    """Resolved fairshare solver strategy (requested == effective).

    Mirrors :class:`BackendChoice` for symmetry; solver strategies are
    pure Python, so no degradation path exists today.
    """

    requested: str
    effective: str


def resolve_solver(strategy: str | None = None) -> SolverChoice:
    """Resolve a solver-strategy request.

    ``None`` consults ``REPRO_SOLVER``, then :data:`DEFAULT_SOLVER`.
    Unknown names raise :class:`~repro.errors.ConfigurationError`.
    """
    if strategy is None:
        strategy = os.environ.get(SOLVER_ENV_VAR) or DEFAULT_SOLVER
    name = strategy.strip().lower()
    if name not in SOLVER_STRATEGIES:
        known = ", ".join(SOLVER_STRATEGIES)
        raise ConfigurationError(
            f"unknown solver strategy {strategy!r} (known: {known})"
        )
    return SolverChoice(name, name)


def numpy_available() -> bool:
    """Whether the vectorized backend can run."""
    return _np is not None


def compiled_available() -> bool:
    """Whether the compiled (numba) backend can run."""
    return _COMPILED_KERNELS is not None


def resolve_backend(backend: str | None = None) -> BackendChoice:
    """Resolve a backend request to what will actually run.

    ``None`` consults ``REPRO_BACKEND``, then the default.  Unknown
    names raise :class:`~repro.errors.ConfigurationError`; known-but-
    unavailable ones degrade silently (the choice records it as
    ``degraded`` for anyone who wants to surface a notice).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    name = backend.strip().lower()
    if name not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ConfigurationError(
            f"unknown backend {backend!r} (known: {known})"
        )
    effective = name
    if effective == "compiled" and not compiled_available():
        effective = "vectorized"
    if effective == "vectorized" and not numpy_available():
        effective = "python"
    return BackendChoice(name, effective)


# -- compiled kernels ---------------------------------------------------------
#
# The kernels operate on the first ``n`` slots of pre-allocated float64
# arrays (the FlowNetwork's slot arrays).  They are deliberately tiny:
# the same three array statements as the vectorized path, just fused
# into single passes without temporaries.


def _build_compiled_kernels() -> dict[str, Callable[..., Any]] | None:
    """JIT-compile the hot-loop kernels, or ``None`` if numba is absent.

    Compilation itself is lazy (first call), so importing this module
    stays cheap even with numba installed.
    """
    if _np is None:
        return None
    try:
        from numba import njit  # type: ignore[import-not-found]
    except ImportError:
        return None

    @njit(cache=True)
    def advance(remaining: Any, rate: Any, n: int, dt: float) -> None:
        for i in range(n):
            remaining[i] -= rate[i] * dt

    @njit(cache=True)
    def min_eta(remaining: Any, rate: Any, n: int) -> float:
        best = remaining[0] / rate[0]
        for i in range(1, n):
            eta = remaining[i] / rate[i]
            if eta < best:
                best = eta
        return best

    @njit(cache=True)
    def finished_mask(remaining: Any, threshold: Any, out: Any, n: int) -> int:
        count = 0
        for i in range(n):
            hit = remaining[i] <= threshold[i]
            out[i] = hit
            if hit:
                count += 1
        return count

    return {"advance": advance, "min_eta": min_eta, "finished_mask": finished_mask}


_COMPILED_KERNELS = _build_compiled_kernels()


def compiled_kernels() -> dict[str, Callable[..., Any]]:
    """The numba kernel table; raises if the backend is unavailable."""
    if _COMPILED_KERNELS is None:
        raise ConfigurationError(
            "compiled backend unavailable (numba not installed)"
        )
    return _COMPILED_KERNELS

"""A minimal, deterministic process-based discrete-event kernel.

The design follows the SimPy model but is intentionally small: events
carry callbacks, processes are Python generators that *yield* events,
and the engine advances a simulated clock over a time-bucketed event
queue.  Determinism is guaranteed by FIFO dispatch within a timestamp:
occurrences scheduled for the same instant fire in scheduling order,
exactly as a ``(time, sequence)`` heap would order them.

Typical use::

    engine = SimEngine()

    def worker(engine):
        yield engine.timeout(1e-6)          # sleep 1 us
        done = engine.event()
        engine.call_after(2e-6, done.succeed, "payload")
        value = yield done                  # wait for a signal
        return value

    proc = engine.process(worker(engine))
    engine.run()
    assert proc.value == "payload"

The hot path is tuned for event throughput — this loop dominates
figure sweeps with hundreds of concurrent flows:

- The queue is an *epoch queue*: a dict of ``time -> [items]`` buckets
  plus a min-heap of the **distinct** pending times.  All occurrences
  sharing a timestamp are popped as one batch (an *epoch*) and
  dispatched in FIFO sequence order, so the clock advances once per
  epoch instead of once per event, scheduling another item at an
  already-pending time is an O(1) list append (no heap sift), and
  zero-delay occurrences scheduled *during* an epoch append directly
  to the live epoch buffer — the common ``succeed()``-at-now case
  never touches the heap at all.
- ``call_after`` schedules a pooled ``__slots__``-tight timer record
  instead of a full :class:`Timeout` event plus closure; fired records
  return to a free-list and are reused.
- :meth:`SimEngine.schedule` returns a cancellable :class:`TimerHandle`
  whose cancellation is *lazy*: the queued record stays put and dead
  records are skimmed in bulk (without firing, without clock movement)
  as their epoch dispatches, so cancelling costs O(1).
- Event callback lists are allocated lazily — an event nobody
  subscribes to never allocates one.

Only the features the library needs are implemented; unsupported uses
raise :class:`repro.errors.SimulationError` rather than misbehaving.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SchedulingError, SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence with a value and subscriber callbacks.

    Events start *pending*; exactly one of :meth:`succeed` or
    :meth:`fail` transitions them to *triggered*, after which the engine
    delivers them to subscribers at the current simulation time.
    """

    __slots__ = ("engine", "_callbacks", "_triggered", "_delivered", "value", "_failure")

    def __init__(self, engine: "SimEngine") -> None:
        self.engine = engine
        self._callbacks: list[Callable[["Event"], None]] | None = None
        self._triggered = False
        self._delivered = False
        self.value: Any = None
        self._failure: BaseException | None = None

    @property
    def triggered(self) -> bool:
        """Whether succeed()/fail() has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether callbacks have been delivered."""
        return self._delivered

    @property
    def ok(self) -> bool:
        """Triggered successfully (no failure)."""
        return self._triggered and self._failure is None

    @property
    def failure(self) -> BaseException | None:
        """The failure exception, or ``None``."""
        return self._failure

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self.value = value
        self.engine._schedule_delivery(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see the exception raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._failure = exception
        self.engine._schedule_delivery(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Subscribe; fires immediately (at delivery) if already delivered."""
        if self._delivered:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def _discard_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._callbacks is not None:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def _deliver(self) -> None:
        if self._delivered:
            raise SimulationError("event delivered twice")
        self._delivered = True
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "SimEngine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout {delay}")
        super().__init__(engine)
        self.delay = delay
        self._triggered = True
        self.value = value
        engine._schedule_delivery(self, delay=delay)


class TimerHandle:
    """A scheduled callback with O(1) lazy cancellation.

    Returned by :meth:`SimEngine.schedule`.  :meth:`cancel` marks the
    record; the engine discards it (without firing) when its epoch
    dispatches, so cancellation never reshapes the queue.
    """

    __slots__ = ("callback", "args", "cancelled", "_pooled")

    def __init__(
        self,
        callback: Callable[..., Any] | None,
        args: tuple[Any, ...],
        pooled: bool,
    ) -> None:
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._pooled = pooled

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent, O(1))."""
        self.cancelled = True
        self.callback = None
        self.args = ()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator; also an event that triggers on return.

    The generator yields :class:`Event` instances and is resumed with
    the event's value (or the failure exception thrown in).  The
    process's own event value is the generator's return value.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self, engine: "SimEngine", generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(engine)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Start the process at the current time, but via the event queue
        # so creation order is preserved deterministically.
        bootstrap = Timeout(engine, 0.0)
        bootstrap.add_callback(self._resume)
        self._waiting_on = bootstrap

    @property
    def is_alive(self) -> bool:
        """Whether the generator is still running."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting = self._waiting_on
        self._waiting_on = None
        # Detach from whatever we were waiting on: the stale callback
        # must become a no-op.
        if waiting is not None:
            waiting._discard_callback(self._resume)
        wakeup = Timeout(self.engine, 0.0)
        wakeup.add_callback(lambda _evt: self._step(throw=Interrupt(cause)))

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if event._failure is not None:
            self._step(throw=event._failure)
        else:
            self._step(send=event.value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event"
            )
        if target.engine is not self.engine:
            raise SimulationError("process yielded an event from another engine")
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Triggers when all component events have triggered.

    Value is the list of component values in input order.  Fails fast
    on the first component failure.
    """

    __slots__ = ("_pending", "_events")

    def __init__(self, engine: "SimEngine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_component)

    def _on_component(self, event: Event) -> None:
        if self._triggered:
            return
        if event._failure is not None:
            self.fail(event._failure)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Triggers when the first component event triggers.

    Value is ``(index, value)`` of the winning component.
    """

    __slots__ = ("_events",)

    def __init__(self, engine: "SimEngine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self._events):
            event.add_callback(lambda evt, i=index: self._on_component(i, evt))

    def _on_component(self, index: int, event: Event) -> None:
        if self._triggered:
            return
        if event._failure is not None:
            self.fail(event._failure)
            return
        self.succeed((index, event.value))


#: Free-list bound: beyond this many idle timer records, extras are
#: dropped to the garbage collector instead of pooled.
_TIMER_POOL_LIMIT = 256


class SimEngine:
    """The event loop: a clock plus a deterministic epoch queue.

    The queue stores occurrences in per-timestamp FIFO buckets; a
    min-heap of the *distinct* pending times orders the buckets.  Each
    :meth:`run` iteration pops one bucket — an **epoch** — and
    dispatches its items in scheduling order, advancing the clock once
    (and only when a live item actually fires, so trailing cancelled
    timers never move time).  Items scheduled *at the current instant
    while its epoch is dispatching* are appended to the live epoch
    buffer directly: their sequence numbers are by construction higher
    than everything pending, so FIFO order is preserved without any
    heap traffic.  The dispatch order is bit-identical to the classic
    ``(time, sequence)`` heap the engine used through v0.6.

    ``metrics`` optionally attaches a
    :class:`~repro.obs.metrics.MetricsRegistry`; when enabled, ``run``
    switches to an observed loop that samples queue depth and pushes
    event/timer deltas into the registry.  The disabled path pays one
    truthiness check per ``run()`` call — nothing per event.
    """

    def __init__(self, *, metrics: Any = None) -> None:
        self._now = 0.0
        #: time -> FIFO list of items (TimerHandle or Event) at that time.
        self._buckets: dict[float, list[Any]] = {}
        #: min-heap of the distinct times present in ``_buckets``.
        self._times: list[float] = []
        #: the epoch currently dispatching (bucket popped from the dict).
        self._epoch: list[Any] = []
        self._epoch_pos = 0
        self._epoch_time = 0.0
        self._running = False
        self._timer_pool: list[TimerHandle] = []
        if metrics is None:
            from ..obs.metrics import NULL_METRICS

            metrics = NULL_METRICS
        self.metrics = metrics
        # Throughput counters (read via stats(); cheap int bumps).
        self.events_delivered = 0
        self.timers_fired = 0
        self.timers_cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self._now

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a generator as a process; returns its handle."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all components have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires with the first component."""
        return AnyOf(self, events)

    def _enqueue(self, when: float, item: Any) -> None:
        """Queue an item at ``when`` (absolute), preserving FIFO order.

        Fast paths, in order: appending to the epoch currently
        dispatching at ``when`` (no heap traffic at all — the common
        ``succeed()``-at-now case), appending to an existing bucket
        (O(1) — no heap sift), and only for the first item at a brand
        new time a heap push of that time.
        """
        if when == self._epoch_time and self._epoch_pos < len(self._epoch):
            # Scheduled at the very instant its epoch is dispatching:
            # every pending item here has a lower sequence number, so a
            # plain append keeps (time, sequence) order exact.
            self._epoch.append(item)
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [item]
            heapq.heappush(self._times, when)
        else:
            bucket.append(item)

    def call_after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds.

        Fire-and-forget: the scheduling record comes from (and returns
        to) the engine's free-list.  Use :meth:`schedule` when the
        callback may need cancelling.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        pool = self._timer_pool
        if pool:
            timer = pool.pop()
            timer.callback = callback
            timer.args = args
            timer.cancelled = False
        else:
            timer = TimerHandle(callback, args, pooled=True)
        self._enqueue(self._now + delay, timer)

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> TimerHandle:
        """Like :meth:`call_after`, but returns a cancellable handle.

        Handles are never pooled (a caller may keep one arbitrarily
        long), so cancellation can't alias a recycled record.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        timer = TimerHandle(callback, args, pooled=False)
        self._enqueue(self._now + delay, timer)
        return timer

    # -- scheduling ----------------------------------------------------------

    def _schedule_delivery(self, event: Event, *, delay: float = 0.0) -> None:
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        self._enqueue(self._now + delay, event)

    # -- execution -------------------------------------------------------------

    def _load_epoch(self) -> bool:
        """Pop the earliest bucket into the epoch buffer.

        Returns False when the queue is empty.  Does *not* advance the
        clock — time moves when the first live item of the epoch
        dispatches, so a trailing all-cancelled bucket never drags the
        clock forward (matching the classic per-event loop, which only
        advanced time on live deliveries).
        """
        if not self._times:
            if self._epoch:
                self._epoch = []
                self._epoch_pos = 0
            return False
        when = heapq.heappop(self._times)
        self._epoch = self._buckets.pop(when)
        self._epoch_pos = 0
        self._epoch_time = when
        return True

    def _dispatch_one(self) -> bool:
        """Dispatch the next item of the current epoch.

        Returns True if it was live (fired/delivered), False if it was
        a cancelled timer record (skimmed).  The caller guarantees the
        epoch buffer is non-empty at ``_epoch_pos``.
        """
        pos = self._epoch_pos
        item = self._epoch[pos]
        self._epoch_pos = pos + 1
        if item.__class__ is TimerHandle:
            if item.cancelled:
                self.timers_cancelled += 1
                if item._pooled and len(self._timer_pool) < _TIMER_POOL_LIMIT:
                    item.callback = None
                    item.args = ()
                    self._timer_pool.append(item)
                return False
            when = self._epoch_time
            if when < self._now - 1e-18:
                raise SchedulingError(
                    f"event scheduled in the past ({when} < {self._now})"
                )
            if when > self._now:
                self._now = when
            callback, args = item.callback, item.args
            if item._pooled and len(self._timer_pool) < _TIMER_POOL_LIMIT:
                item.callback = None
                item.args = ()
                self._timer_pool.append(item)
            self.timers_fired += 1
            callback(*args)
            return True
        when = self._epoch_time
        if when < self._now - 1e-18:
            raise SchedulingError(
                f"event scheduled in the past ({when} < {self._now})"
            )
        if when > self._now:
            self._now = when
        self.events_delivered += 1
        item._deliver()
        return True

    def step(self) -> bool:
        """Deliver the next live occurrence.

        Cancelled timer records are discarded silently.  Returns False
        when nothing (live) remains on the queue.
        """
        while True:
            if self._epoch_pos >= len(self._epoch) and not self._load_epoch():
                return False
            while self._epoch_pos < len(self._epoch):
                if self._dispatch_one():
                    return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or the clock passes ``until``).

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            if self.metrics:
                self._run_observed(until)
                return self._now
            if until is None:
                self._run_epochs()
            else:
                self._run_epochs_until(until)
        finally:
            self._running = False
        return self._now

    def _run_epochs(self) -> None:
        """The unbounded drain loop — the engine's hottest code.

        One pass of the outer loop dispatches one full epoch; the inner
        loop is a tight FIFO walk with the per-item work inlined
        (cancelled-record skimming, pool recycling, clock advance on
        first live item).  State that callbacks can touch
        (``_epoch_pos`` via :meth:`step`, the epoch list via
        :meth:`_enqueue` appends) is re-read from ``self`` at the
        points where it can change.
        """
        buckets = self._buckets
        times = self._times
        pool = self._timer_pool
        heappop = heapq.heappop
        events = self.events_delivered
        fired = self.timers_fired
        cancelled = self.timers_cancelled
        try:
            while True:
                epoch = self._epoch
                pos = self._epoch_pos
                if pos >= len(epoch):
                    if not times:
                        if epoch:
                            self._epoch = []
                            self._epoch_pos = 0
                        break
                    when = heappop(times)
                    epoch = buckets.pop(when)
                    self._epoch = epoch
                    self._epoch_time = when
                    pos = 0
                else:
                    when = self._epoch_time
                while pos < len(epoch):
                    item = epoch[pos]
                    pos += 1
                    self._epoch_pos = pos
                    if item.__class__ is TimerHandle:
                        if item.cancelled:
                            cancelled += 1
                            if item._pooled and len(pool) < _TIMER_POOL_LIMIT:
                                item.callback = None
                                item.args = ()
                                pool.append(item)
                            continue
                        if when > self._now:
                            self._now = when
                        elif when < self._now - 1e-18:
                            raise SchedulingError(
                                f"event scheduled in the past ({when} < {self._now})"
                            )
                        callback, args = item.callback, item.args
                        if item._pooled and len(pool) < _TIMER_POOL_LIMIT:
                            item.callback = None
                            item.args = ()
                            pool.append(item)
                        fired += 1
                        callback(*args)
                    else:
                        if when > self._now:
                            self._now = when
                        elif when < self._now - 1e-18:
                            raise SchedulingError(
                                f"event scheduled in the past ({when} < {self._now})"
                            )
                        events += 1
                        item._deliver()
                    # A callback may have appended to this epoch or
                    # consumed items via a nested step(); re-sync.
                    pos = self._epoch_pos
        finally:
            self.events_delivered = events
            self.timers_fired = fired
            self.timers_cancelled = cancelled

    def _run_epochs_until(self, until: float) -> None:
        """The bounded drain loop (``run(until=...)`` semantics).

        Identical to :meth:`_run_epochs`, except no epoch with a
        timestamp beyond ``until`` starts: the clock parks at ``until``
        and pending later work stays queued.
        """
        while True:
            if self._epoch_pos >= len(self._epoch):
                if not self._times:
                    if self._epoch:
                        self._epoch = []
                        self._epoch_pos = 0
                    break
                if self._times[0] > until:
                    self._now = until
                    break
                self._load_epoch()
            elif self._epoch_time > until:
                self._now = until
                break
            while self._epoch_pos < len(self._epoch):
                self._dispatch_one()

    def _run_observed(self, until: Optional[float]) -> None:
        """The metrics-enabled run loop (same semantics as ``run``).

        Kept separate so the common disabled path stays branch-free:
        this loop samples queue depth per dispatch and folds the
        event/timer deltas into the registry when the drain ends.
        """
        metrics = self.metrics
        step = self.step
        events_before = self.events_delivered
        timers_before = self.timers_fired
        cancelled_before = self.timers_cancelled
        depth = metrics.gauge("engine/heap_depth")
        depth_series = metrics.timeseries("engine/heap_depth")
        try:
            if until is None:
                while self._times or self._epoch_pos < len(self._epoch):
                    depth.set(self.queue_depth())
                    depth_series.observe(self._now, self.queue_depth())
                    if not step():
                        break
            else:
                while self._times or self._epoch_pos < len(self._epoch):
                    head = self._next_time()
                    if head is not None and head > until:
                        self._now = until
                        break
                    depth.set(self.queue_depth())
                    depth_series.observe(self._now, self.queue_depth())
                    if not step():
                        break
        finally:
            metrics.counter("engine/runs").inc()
            metrics.counter("engine/events_delivered").inc(
                self.events_delivered - events_before
            )
            metrics.counter("engine/timers_fired").inc(
                self.timers_fired - timers_before
            )
            metrics.counter("engine/timers_cancelled").inc(
                self.timers_cancelled - cancelled_before
            )

    def _next_time(self) -> float | None:
        """Timestamp of the next queued occurrence, or ``None``."""
        if self._epoch_pos < len(self._epoch):
            return self._epoch_time
        if self._times:
            return self._times[0]
        return None

    def run_process(self, generator: ProcessGenerator, name: str = "") -> Any:
        """Convenience: start a process, run to completion, return its value."""
        proc = self.process(generator, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock?)"
            )
        if proc.failure is not None:
            raise proc.failure
        return proc.value

    # -- introspection ----------------------------------------------------------

    def queue_depth(self) -> int:
        """Pending queued occurrences (live + lazily-cancelled)."""
        return (
            len(self._epoch)
            - self._epoch_pos
            + sum(map(len, self._buckets.values()))
        )

    def stats(self) -> dict[str, int]:
        """Throughput counters (for ``Session.stats`` and ``repro perf``)."""
        return {
            "events_delivered": self.events_delivered,
            "timers_fired": self.timers_fired,
            "timers_cancelled": self.timers_cancelled,
            "heap_size": self.queue_depth(),
        }

"""Fluid-flow network on top of the DES engine.

A :class:`FlowNetwork` owns a set of directional :class:`Channel`\\ s
(one per Infinity Fabric link direction, per SDMA engine, per HBM
port…) and simulates concurrent transfers as *fluid flows*: each flow
moves bytes at a rate determined by the max-min fair allocation over
the channels it crosses, re-solved whenever a flow starts or finishes.
Between rate changes flows progress linearly, so completion times are
exact, not time-stepped.

This is the standard fluid approximation used in interconnect
modelling; it captures precisely the phenomena the paper measures —
bandwidth sharing on oversubscribed links (Fig. 4/5), bottleneck links
on multi-hop paths (Fig. 6c/10), and engine throughput caps (SDMA's
~50 GB/s plateau).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping, Sequence

from ..errors import LinkDownError, SimulationError
from .backends import compiled_kernels, resolve_backend, resolve_solver
from .engine import Event, SimEngine, TimerHandle
from .fairshare import FairshareSolver, FlowSpec, max_min_fair_rates_reference

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dependency
    _np = None

#: Completion slop, in bytes: flows within this of zero are done.  Keeps
#: float accumulation from scheduling infinitesimal residual transfers.
_EPSILON_BYTES = 1e-6

#: Initial slot-array capacity for the vectorized backends.
_INITIAL_SLOTS = 64


@dataclass
class Channel:
    """A directional transport resource with capacity in bytes/s.

    Capacity is strictly positive at construction; fault injection may
    later change it — including to zero, modeling a failed link — via
    :meth:`set_capacity` (always through
    :meth:`FlowNetwork.set_capacity`, which keeps the solver in sync
    and re-levels in-flight flows).
    """

    channel_id: Hashable
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SimulationError(
                f"channel {self.channel_id!r} capacity must be positive"
            )

    def set_capacity(self, capacity: float) -> None:
        """Set a new capacity (non-negative; zero models a failed link)."""
        if capacity < 0:
            raise SimulationError(
                f"channel {self.channel_id!r} capacity must be non-negative"
            )
        self.capacity = capacity


class Flow:
    """A live transfer: ``size`` bytes across ``channels`` at ≤ ``cap``.

    ``done`` is an engine event that triggers (with the flow) when the
    last byte arrives.  ``rate`` is the currently allocated rate and is
    only meaningful while the flow is active.
    """

    __slots__ = (
        "flow_id",
        "channels",
        "cap",
        "size",
        "remaining",
        "rate",
        "done",
        "start_time",
        "finish_time",
        "label",
        "span",
        "blame_key",
        "slot",
    )

    def __init__(
        self,
        flow_id: int,
        channels: tuple[Hashable, ...],
        cap: float,
        size: float,
        done: Event,
        start_time: float,
        label: str = "",
    ) -> None:
        self.flow_id = flow_id
        self.channels = channels
        self.cap = cap
        self.size = size
        self.remaining = float(size)
        self.rate = 0.0
        self.done = done
        self.start_time = start_time
        self.finish_time: float | None = None
        self.label = label
        self.span: "Any" = None
        self.blame_key = ""
        #: Index into the network's slot arrays (vectorized backends);
        #: -1 while unslotted.
        self.slot = -1

    @property
    def completed(self) -> bool:
        """Whether the last byte has arrived."""
        return self.finish_time is not None

    @property
    def elapsed(self) -> float | None:
        """Transfer duration, or ``None`` while active."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def achieved_rate(self) -> float | None:
        """Average bytes/s over the whole transfer, once complete.

        ``None`` while in flight *and* for degenerate zero-duration
        transfers (e.g. zero-byte flows), whose average rate is
        undefined — consumers skip ``None`` instead of propagating
        ``inf`` into metrics and reports.
        """
        elapsed = self.elapsed
        if elapsed is None or elapsed == 0:
            return None
        return self.size / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else f"{self.remaining:.0f}B left"
        return f"<Flow {self.flow_id} {self.label!r} {state}>"


class FlowNetwork:
    """The set of channels plus all currently active flows.

    Rate allocation runs through a persistent
    :class:`~repro.sim.fairshare.FairshareSolver`: flow arrivals and
    departures re-level only the connected component they touch, and
    the single pending completion alarm is cancelled (lazily, O(1))
    whenever a rate change supersedes it.  Pass ``incremental=False``
    to force a full batch re-solve on every change — the pre-solver
    behaviour, kept for differential tests and the perf baseline.

    ``backend`` selects the interval-integration implementation
    (``"python"``, ``"vectorized"``, ``"compiled"``; see
    :mod:`repro.sim.backends`).  All backends are bit-identical —
    the vectorized path performs the same IEEE-754 float64 operations
    as the per-flow loop, one array statement per interval — so the
    choice affects only wall-clock speed, never results.  ``None``
    consults ``REPRO_BACKEND`` and defaults to ``"vectorized"``.

    ``solver`` likewise selects the fairshare *strategy* (see
    :mod:`repro.sim.backends`): ``"dirty"`` (the default — trace
    replay plus epoch-deferred solving, so all churn within one engine
    epoch coalesces into a single re-level), ``"eager"`` (trace
    replay, one solve per event) or ``"full"`` (the per-component
    re-solve on every event, the perf baseline).  All three are
    bit-identical on rates, bottleneck attribution and completion
    times (differential-tested), which is why — like the backend —
    the strategy stays out of result cache keys.  ``None`` consults
    ``REPRO_SOLVER``.

    In the vectorized backends, live per-flow state (remaining bytes)
    is authoritative in the slot arrays between rate changes;
    ``Flow.remaining`` on in-flight flows is refreshed at the same
    boundaries the Python loop writes it (rate changes) only when read
    through :meth:`active_flows`, and is exact (0.0) on completion.
    """

    def __init__(
        self,
        engine: SimEngine,
        *,
        incremental: bool = True,
        metrics: "Any" = None,
        spans: "Any" = None,
        backend: str | None = None,
        solver: str | None = None,
    ) -> None:
        self.engine = engine
        self._channels: dict[Hashable, Channel] = {}
        self._active: dict[int, Flow] = {}
        self._flow_ids = itertools.count()
        self._last_update = 0.0
        self._incremental = incremental
        self._alarm: TimerHandle | None = None
        choice = resolve_backend(backend)
        self.backend_requested = choice.requested
        self.backend = choice.effective
        strategy = resolve_solver(solver)
        self.solver_strategy = strategy.effective
        # Epoch deferral: all churn inside one engine epoch coalesces
        # into a single re-level, flushed by a zero-delay timer before
        # simulated time can advance.  Only meaningful with the
        # incremental solver (legacy mode re-solves globally per event).
        self._defer = incremental and self.solver_strategy == "dirty"
        self._pending: dict[Hashable, float] | None = None
        self._flush_scheduled = False
        self._kernels = (
            compiled_kernels() if self.backend == "compiled" else None
        )
        if self.backend == "python":
            self._slot_flows: list[Flow] = []
            self._arr_remaining = None
            self._arr_rate = None
            self._arr_threshold = None
        else:
            self._slot_flows = []
            self._arr_remaining = _np.zeros(_INITIAL_SLOTS)
            self._arr_rate = _np.zeros(_INITIAL_SLOTS)
            self._arr_threshold = _np.zeros(_INITIAL_SLOTS)
        if metrics is None:
            from ..obs.metrics import NULL_METRICS

            metrics = NULL_METRICS
        self._metrics = metrics
        if spans is None:
            from ..obs.spans import NULL_SPANS

            spans = NULL_SPANS
        self._spans = spans
        # Bottleneck tracking is the span layer's data source; leave it
        # off otherwise so the disabled path stays within the perf guard.
        self._solver = FairshareSolver(
            track_bottlenecks=bool(spans),
            dirty=incremental and self.solver_strategy in ("dirty", "eager"),
        )
        self._blame_names: dict[Hashable, str] = {}

    @property
    def solver(self) -> FairshareSolver:
        """The live incremental solver (stats live on ``solver.stats``)."""
        return self._solver

    # -- channel management --------------------------------------------------

    def add_channel(self, channel_id: Hashable, capacity: float) -> Channel:
        """Register a channel; duplicate ids or bad capacities raise.

        Capacity must be strictly positive at registration — the error
        surfaces here, at construction, not later mid-solve.  Links can
        only *become* zero-capacity (failed) through
        :meth:`set_capacity`.
        """
        if channel_id in self._channels:
            raise SimulationError(f"channel {channel_id!r} already exists")
        if capacity <= 0:
            raise SimulationError(
                f"channel {channel_id!r} capacity must be positive"
            )
        channel = Channel(channel_id, capacity)
        self._channels[channel_id] = channel
        self._solver.add_channel(channel_id, capacity)
        return channel

    def set_capacity(self, channel_id: Hashable, capacity: float) -> None:
        """Change a channel's capacity mid-run, re-leveling in-flight flows.

        The incremental solver re-levels only the connected component
        crossing the channel, bit-identical to tearing every flow down
        and re-adding it under the new capacity (differential-tested).

        ``capacity == 0`` models a failed link: every in-flight flow
        crossing the channel fails — its ``done`` event raises
        :class:`~repro.errors.LinkDownError` into whatever process is
        waiting on it — and new transfers requesting the channel raise
        the same error up front.  Survivors sharing channels with the
        failed flows are re-leveled (they typically speed up).
        """
        channel = self.channel(channel_id)
        if capacity < 0:
            raise SimulationError(
                f"channel {channel_id!r} capacity must be non-negative"
            )
        if capacity == channel.capacity:
            return
        self._advance_to_now()
        incremental = self._incremental
        failed: list[Flow] = []
        updated: dict[Hashable, float] = {}
        if capacity == 0:
            failed = [
                flow
                for flow in self._active.values()
                if channel_id in flow.channels
            ]
            for flow in failed:
                del self._active[flow.flow_id]
                if incremental:
                    updated.update(self._solver.remove_flow(flow.flow_id))
                if self._arr_remaining is not None:
                    flow.remaining = float(self._arr_remaining[flow.slot])
                    self._slot_remove(flow)
                flow.rate = 0.0
        channel.set_capacity(capacity)
        if incremental:
            updated.update(self._solver.set_capacity(channel_id, capacity))
        if self._metrics:
            self._metrics.counter("network/capacity_changes").inc()
            if failed:
                self._metrics.counter("network/flows_failed").inc(len(failed))
        if incremental and self._defer:
            # Merge with any earlier churn this epoch, then apply now:
            # fault semantics (survivor speed-ups, failure ordering) are
            # synchronous, and capacity changes are rare enough that
            # deferring them buys nothing.
            self._defer_resolve(updated)
            self.flush_pending()
        else:
            self._resolve_and_schedule(updated if incremental else None)
        for flow in failed:
            flow.done.fail(
                LinkDownError(
                    f"flow {flow.flow_id} ({flow.label or 'unlabelled'}) "
                    f"lost channel {channel_id!r}: link failed"
                )
            )

    def set_blame_alias(self, channel_id: Hashable, alias: str) -> None:
        """Override the blame-bucket name flows frozen at a channel get.

        Fault injection uses this so degraded links show up in
        ``repro explain`` as e.g. ``fault:link-degrade:1->3`` instead of
        their plain channel name.  Takes effect at the next re-level.
        """
        self.channel(channel_id)
        self._blame_names[channel_id] = alias

    def clear_blame_alias(self, channel_id: Hashable) -> None:
        """Drop a blame alias; the plain metric name is re-derived lazily."""
        self._blame_names.pop(channel_id, None)

    def has_channel(self, channel_id: Hashable) -> bool:
        """Whether a channel id is registered."""
        return channel_id in self._channels

    def channel(self, channel_id: Hashable) -> Channel:
        """Look up a channel by id."""
        try:
            return self._channels[channel_id]
        except KeyError:
            raise SimulationError(f"unknown channel {channel_id!r}") from None

    def capacities(self) -> dict[Hashable, float]:
        """``{channel id: capacity}`` snapshot."""
        return {cid: c.capacity for cid, c in self._channels.items()}

    # -- flow lifecycle ---------------------------------------------------------

    def transfer(
        self,
        channels: Iterable[Hashable],
        size: float,
        *,
        cap: float = math.inf,
        label: str = "",
        span: "Any" = None,
    ) -> Flow:
        """Start a flow of ``size`` bytes; returns the live :class:`Flow`.

        Zero-byte transfers complete immediately (their ``done`` event
        still goes through the queue, preserving FIFO semantics).
        ``span``, when span recording is on, binds the flow to a causal
        span: every constant-rate interval the flow lives through is
        charged to the span's blame ledger under the channel (or cap)
        the fair-share solver froze the flow at.
        """
        channel_ids = tuple(channels)
        for channel_id in channel_ids:
            channel = self._channels.get(channel_id)
            if channel is None:
                raise SimulationError(f"unknown channel {channel_id!r}")
            if channel.capacity <= 0:
                raise LinkDownError(
                    f"channel {channel_id!r} is down (capacity 0); "
                    f"cannot start transfer {label!r}"
                )
        if size < 0:
            raise SimulationError("transfer size must be non-negative")
        if not channel_ids and cap is math.inf:
            raise SimulationError("flow needs at least one channel or a cap")

        flow = Flow(
            next(self._flow_ids),
            channel_ids,
            cap,
            size,
            self.engine.event(),
            self.engine.now,
            label,
        )
        if span is not None and self._spans:
            flow.span = span
        if size == 0:
            flow.finish_time = self.engine.now
            flow.done.succeed(flow)
            return flow

        self._advance_to_now()
        self._active[flow.flow_id] = flow
        if self._arr_remaining is not None:
            self._slot_add(flow)
        metrics = self._metrics
        if metrics:
            metrics.counter("network/flows_started").inc()
            metrics.counter("network/bytes_requested").inc(size)
            for channel_id in channel_ids:
                metrics.channel(
                    channel_id, self._channels[channel_id].capacity
                ).flows += 1
        if not self._incremental:
            self._resolve_and_schedule()
            return flow
        updated = self._solver.add_flow(FlowSpec(flow.flow_id, channel_ids, cap))
        if self._defer:
            self._defer_resolve(updated)
        else:
            self._resolve_and_schedule(updated)
        return flow

    def active_flows(self) -> Sequence[Flow]:
        """Flows currently in flight.

        Refreshes ``Flow.remaining`` from the backend state first, so
        callers see values as of the last rate change regardless of
        backend.
        """
        self.flush_pending()
        if self._arr_remaining is not None:
            self._sync_remaining()
        return list(self._active.values())

    def utilization(self, channel_id: Hashable) -> float:
        """Fraction of a channel's capacity currently allocated.

        Edge cases: an unbounded (``inf``-capacity) channel is never
        utilized — 0.0 by definition; a failed (zero-capacity) channel
        reports 1.0 while flows are still pinned on it and 0.0 when
        idle, rather than dividing by zero.
        """
        channel = self.channel(channel_id)
        self.flush_pending()
        occupied = False
        load = 0.0
        for f in self._active.values():
            if channel_id in f.channels:
                occupied = True
                load += f.rate
        if not math.isfinite(channel.capacity):
            return 0.0
        if channel.capacity <= 0:
            return 1.0 if occupied else 0.0
        return load / channel.capacity

    # -- internals -----------------------------------------------------------------

    def _slot_add(self, flow: Flow) -> None:
        """Assign the next free slot-array index to a new flow.

        The completion threshold is precomputed here: it folds the
        Python path's ``remaining <= eps * max(1, size) or remaining
        <= eps`` test into one comparison, because ``eps * max(1.0,
        size)`` is never below ``eps``.
        """
        slots = self._slot_flows
        slot = len(slots)
        rem = self._arr_remaining
        if slot >= len(rem):
            grow = len(rem) * 2
            self._arr_remaining = rem = _np.resize(rem, grow)
            self._arr_rate = _np.resize(self._arr_rate, grow)
            self._arr_threshold = _np.resize(self._arr_threshold, grow)
        slots.append(flow)
        flow.slot = slot
        rem[slot] = flow.remaining
        self._arr_rate[slot] = 0.0
        self._arr_threshold[slot] = _EPSILON_BYTES * max(1.0, flow.size)

    def _slot_remove(self, flow: Flow) -> None:
        """Free a flow's slot, compacting by swapping the last slot in."""
        slots = self._slot_flows
        slot = flow.slot
        last = len(slots) - 1
        if slot != last:
            moved = slots[last]
            slots[slot] = moved
            moved.slot = slot
            self._arr_remaining[slot] = self._arr_remaining[last]
            self._arr_rate[slot] = self._arr_rate[last]
            self._arr_threshold[slot] = self._arr_threshold[last]
        slots.pop()
        flow.slot = -1

    def _sync_remaining(self) -> None:
        """Copy slot-array remaining-bytes back onto the flow objects."""
        values = self._arr_remaining[: len(self._slot_flows)].tolist()
        for flow, value in zip(self._slot_flows, values):
            flow.remaining = value

    def _advance_to_now(self) -> None:
        """Account for bytes moved since the last rate change.

        The vectorized backends advance every live flow with one array
        statement (or one compiled pass); element-wise float64
        multiply-subtract, bit-identical to the per-flow loop.
        """
        now = self.engine.now
        dt = now - self._last_update
        if dt < 0:
            raise SimulationError("flow network clock went backwards")
        if dt > 0:
            if self._pending is not None:
                # Unreachable by construction: the flush timer runs in
                # the epoch that deferred, before time can advance.
                raise SimulationError(
                    "deferred re-level survived its epoch; engine "
                    "epoch ordering is broken"
                )
            if self._active and (self._metrics or self._spans):
                if self._metrics:
                    self._account_interval(self._last_update, dt)
                if self._spans:
                    self._account_spans(self._last_update, dt)
            rem = self._arr_remaining
            if rem is None:
                for flow in self._active.values():
                    flow.remaining -= flow.rate * dt
            else:
                n = len(self._slot_flows)
                if n:
                    if self._kernels is not None:
                        self._kernels["advance"](rem, self._arr_rate, n, dt)
                    else:
                        rem[:n] -= self._arr_rate[:n] * dt
        self._last_update = now

    def _account_interval(self, start: float, dt: float) -> None:
        """Fold one constant-rate interval into the metrics registry.

        Flows keep their rate between topology changes, so summing
        ``rate × dt`` per channel here (every ``_advance_to_now``) is
        exact — the same integral the flows themselves advance by.
        """
        per_channel: dict[Hashable, list[float]] = {}
        for flow in self._active.values():
            rate = flow.rate
            for channel_id in flow.channels:
                entry = per_channel.get(channel_id)
                if entry is None:
                    per_channel[channel_id] = [rate, 1]
                else:
                    entry[0] += rate
                    entry[1] += 1
        metrics = self._metrics
        channels = self._channels
        for channel_id, (load, nflows) in per_channel.items():
            metrics.channel(channel_id, channels[channel_id].capacity).account(
                start, dt, load, int(nflows)
            )

    def _account_spans(self, start: float, dt: float) -> None:
        """Charge one constant-rate interval to every span-bound flow.

        ``blame_key`` was fixed at the last re-level (the channel the
        solver froze the flow at, or its cap), so each interval lands
        in exactly one blame bucket — work conservation says the flow
        was limited by *something* for the whole interval.
        """
        for flow in self._active.values():
            span = flow.span
            if span is not None:
                span.account(start, dt, flow.rate, flow.blame_key)

    def _defer_resolve(self, updated: Mapping[Hashable, float]) -> None:
        """Coalesce a churn event into this epoch's single re-level.

        Solver state (flow set, rates, traces) is already updated
        eagerly by the caller — only the *application* of rates to
        flows, the min-ETA scan, and the alarm re-arm are deferred.
        The flush rides a zero-delay timer, which the engine appends to
        the currently-dispatching epoch: it runs after every
        already-queued event of this instant and before simulated time
        can advance, so integration never sees a stale rate across a
        non-zero interval.  Within the epoch all intervals have zero
        duration, which is why deferral is invisible in completion
        times (differential-tested against per-event solving).
        """
        pending = self._pending
        if pending is None:
            self._pending = pending = {}
        pending.update(updated)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.engine.call_after(0.0, self._flush)

    def _flush(self) -> None:
        """Apply the epoch's coalesced re-level (idempotent)."""
        self._flush_scheduled = False
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        # Ops later in the epoch may have re-leveled a flow again (or
        # removed it); the solver's live table is authoritative.
        rates = self._solver._rates
        for flow_id in pending:
            rate = rates.get(flow_id)
            if rate is not None:
                pending[flow_id] = rate
        self._resolve_and_schedule(pending)

    def flush_pending(self) -> None:
        """Apply any deferred re-level immediately (read-your-writes).

        Safe to call outside engine dispatch; the epoch's queued flush
        timer then finds nothing to do.  Readers that surface per-flow
        rates call this so the epoch-deferred strategy is observationally
        equivalent to per-event solving.
        """
        if self._pending is not None:
            self._flush()

    def _resolve_and_schedule(
        self, updated: Mapping[Hashable, float] | None = None
    ) -> None:
        """Apply re-leveled rates and (re)arm the next completion alarm.

        ``updated`` carries the rates of the component(s) the solver
        just re-leveled; flows outside it keep their cached rate.  When
        ``None`` (legacy mode), the whole system is re-solved from
        scratch with the global reference algorithm.
        """
        if self._alarm is not None:
            self._alarm.cancel()
            self._alarm = None
        if self._metrics:
            self._metrics.counter("network/rate_changes").inc()
        active = self._active
        if not active:
            return
        bottlenecks: Mapping[Hashable, Hashable] | None = None
        if updated is None:
            specs = [
                FlowSpec(flow.flow_id, flow.channels, flow.cap)
                for flow in active.values()
            ]
            if self._spans:
                bottlenecks = {}
                updated = max_min_fair_rates_reference(
                    specs, self.capacities(), bottlenecks
                )
            else:
                updated = max_min_fair_rates_reference(specs, self.capacities())
        elif self._spans:
            # The incremental solver tracked freeze reasons during the
            # re-level that produced ``updated``; read them in place.
            bottlenecks = self._solver._bottlenecks
        arr_rate = self._arr_rate
        for flow_id, rate in updated.items():
            flow = active.get(flow_id)
            if flow is None:
                continue  # departed with a later removal in this batch
            if rate <= 0:
                raise SimulationError(
                    f"flow {flow_id} starved (rate 0); check channel capacities"
                )
            flow.rate = rate
            if arr_rate is not None:
                arr_rate[flow.slot] = rate
            if bottlenecks is not None:
                flow.blame_key = self._blame_key(bottlenecks.get(flow_id), flow)
        # Next completion: min over remaining/rate.  Division is
        # element-wise and min is order-independent for the NaN-free
        # operands here (rates are strictly positive), so all three
        # backends produce the same float.
        rem = self._arr_remaining
        if rem is None:
            next_completion = math.inf
            for flow in active.values():
                eta = flow.remaining / flow.rate
                if eta < next_completion:
                    next_completion = eta
        else:
            n = len(self._slot_flows)
            if self._kernels is not None:
                next_completion = self._kernels["min_eta"](rem, arr_rate, n)
            else:
                next_completion = float((rem[:n] / arr_rate[:n]).min())
        next_completion = max(next_completion, 0.0)
        self._alarm = self.engine.schedule(next_completion, self._on_completion_alarm)

    def _blame_key(self, bottleneck: Hashable | None, flow: Flow) -> str:
        """Flattened blame-bucket name for a solver freeze reason.

        Channel ids flatten exactly like metric names (so blame keys
        line up with ``ChannelUsage`` entries); a ``None`` bottleneck
        means the flow froze at its own cap.
        """
        if bottleneck is None:
            return f"cap:{flow.label or 'flow'}"
        key = self._blame_names.get(bottleneck)
        if key is None:
            from ..obs.metrics import metric_name

            key = metric_name(bottleneck)
            self._blame_names[bottleneck] = key
        return key

    def _on_completion_alarm(self) -> None:
        self._alarm = None
        self._advance_to_now()
        rem = self._arr_remaining
        if rem is None:
            finished = [
                flow
                for flow in self._active.values()
                if flow.remaining <= _EPSILON_BYTES * max(1.0, flow.size)
                or flow.remaining <= _EPSILON_BYTES
            ]
        else:
            # The per-slot threshold equals eps * max(1, size), which
            # subsumes the plain eps test above (it is never smaller),
            # so one comparison matches the two-clause Python check.
            # Slot order is permuted by swap-compaction; sort by
            # flow_id to recover creation (== dict-insertion) order so
            # solver removals and done-event deliveries fire in the
            # exact sequence the Python backend produces.
            n = len(self._slot_flows)
            if self._kernels is not None:
                mask = _np.empty(n, dtype=_np.bool_)
                count = self._kernels["finished_mask"](
                    rem, self._arr_threshold, mask, n
                )
                hits = _np.nonzero(mask)[0] if count else ()
            else:
                hits = _np.nonzero(rem[:n] <= self._arr_threshold[:n])[0]
            finished = [self._slot_flows[i] for i in hits]
            finished.sort(key=lambda flow: flow.flow_id)
        incremental = self._incremental
        if not finished:
            # Rounding pushed the completion infinitesimally later;
            # rescheduling from the fresh state converges.
            self._resolve_and_schedule({} if incremental else None)
            return
        if self._metrics:
            self._metrics.counter("network/flows_completed").inc(len(finished))
        updated: dict[Hashable, float] = {}
        for flow in finished:
            del self._active[flow.flow_id]
            if incremental:
                updated.update(self._solver.remove_flow(flow.flow_id))
            if rem is not None:
                self._slot_remove(flow)
            flow.remaining = 0.0
            flow.rate = 0.0
            flow.finish_time = self.engine.now
        if incremental and self._defer:
            # Deliver the completions *before* scheduling the flush:
            # the ``done`` deliveries then sit ahead of the flush timer
            # in this epoch, so transfers started by resumed processes
            # merge their re-level into the same flush — one solve for
            # the completion plus everything it triggers, instead of
            # one for the removal and one per follow-on add.
            for flow in finished:
                flow.done.succeed(flow)
            self._defer_resolve(updated)
        else:
            self._resolve_and_schedule(updated if incremental else None)
            for flow in finished:
                flow.done.succeed(flow)

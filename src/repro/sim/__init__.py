"""Deterministic discrete-event simulation core.

The performance model of the whole library runs on this package:

- :mod:`repro.sim.engine` — a minimal process-based DES kernel
  (events, timeouts, generator processes, composition combinators).
- :mod:`repro.sim.fairshare` — pure max-min fair ("water-filling")
  bandwidth allocation with per-flow rate caps.
- :mod:`repro.sim.flow` — a fluid-flow network: flows occupy directed
  link channels along a route; rates are re-solved max-min fairly on
  every arrival/departure; completions are exact under piecewise-
  constant rates.
- :mod:`repro.sim.trace` — structured timeline tracing.

Everything is deterministic: same inputs → same event order → same
simulated clock readings, which is what lets the benchmark harness
reproduce the paper's matrices exactly from run to run.
"""

from .engine import (
    SimEngine,
    Event,
    Timeout,
    Process,
    AllOf,
    AnyOf,
    Interrupt,
)
from .fairshare import FlowSpec, max_min_fair_rates
from .flow import Channel, Flow, FlowNetwork
from .trace import TraceRecord, Tracer

__all__ = [
    "SimEngine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "FlowSpec",
    "max_min_fair_rates",
    "Channel",
    "Flow",
    "FlowNetwork",
    "TraceRecord",
    "Tracer",
]

"""Max-min fair rate allocation with per-flow caps ("water-filling").

Infinity Fabric links are modeled as independent directional channels
of fixed capacity.  Several flows may cross a channel simultaneously —
e.g. the eight CPU→GCD STREAM kernels of Fig. 5 each push a flow
through their NUMA domain's port — and the fabric arbitrates them
fairly.  We model that arbitration with the classic *progressive
filling* algorithm:

1. All unfrozen flows grow at the same rate.
2. The first constraint to bind — a channel reaching capacity or a
   flow reaching its own cap (SDMA engine limit, protocol-efficiency
   limit) — freezes the affected flows.
3. Repeat with the survivors until all flows are frozen.

The result is the unique max-min fair allocation.

Two entry points share one progressive-filling core:

- :func:`max_min_fair_rates` — the pure batch solve.  It decomposes
  the flow set into connected components (flows coupled transitively
  through shared channels) and levels each component independently;
  components are numerically independent, so this changes nothing
  semantically but bounds the work per component.
- :class:`FairshareSolver` — the incremental solver the fluid-flow
  network uses.  It keeps the component structure alive across flow
  arrivals and departures, so adding or removing one flow only
  re-levels the affected component instead of the whole system.
  Because both paths run the identical per-component core on
  identical component inputs, the incremental solution is
  *bit-identical* to the batch solution for the same flow set — a
  property the hypothesis churn tests pin.

The per-component core has a NumPy-vectorized inner loop for large
components and a plain-Python loop for small ones; both perform the
same IEEE-754 operations element-wise, so they agree bitwise too.

The batch function is pure (no engine state), which lets the test
suite verify its invariants exhaustively with hypothesis:

- no channel is over capacity,
- no flow exceeds its cap,
- every flow is bottlenecked somewhere (work conservation).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping, Sequence

from ..errors import SimulationError

try:  # NumPy is a hard dependency of the package, but keep the core
    import numpy as _np  # importable without it for the pure solver.
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

ChannelId = Hashable

#: Components at least this large take the vectorized inner loop.
_VECTORIZE_THRESHOLD = 8

#: Components at least this large record a solve trace for dirty-set
#: re-leveling (smaller ones are cheaper to re-solve outright).
_DIRTY_THRESHOLD = 8

#: Consecutive replay failures (divergence at round 0) after which a
#: component stops recording solve traces.  Recording costs a sizable
#: fraction of a solve, and a component whose churn keeps landing on
#: its round-0 binding constraints can never replay — the trace is
#: pure overhead there.  While backed off, a probe trace is recorded
#: every :data:`_REPLAY_PROBE`-th solve so a regime change (churn
#: moving to lightly-loaded channels) re-enables replay.  The counters
#: depend only on the operation sequence, so backoff is deterministic
#: and — like tracing itself — invisible in the solved rates.
_REPLAY_BACKOFF = 4
_REPLAY_PROBE = 8

#: Relative slack for "channel is full" / "flow reached its cap".
_CHANNEL_SLACK = 1e-6
_CAP_SLACK = 1e-9


class _Trace:
    """Round-by-round record of one progressive-filling solve.

    Progressive filling is a deterministic sequence of *rounds*: each
    round raises every unfrozen flow by a common ``delta`` (the
    tightest constraint's headroom), marks saturated channels full and
    freezes their flows.  The trace captures exactly enough of that
    sequence to *replay* it against a perturbed problem:

    - ``deltas``: the per-round fill increments;
    - ``freeze_round``: the round each flow froze in;
    - ``full_round``: the first round each channel was marked full;
    - ``binding_channels`` / ``binding_caps``: per round, the
      constraints whose headroom *exactly equalled* ``delta`` — the
      certificates that the round's delta is reproduced bitwise when
      those constraints are untouched by a perturbation.

    Recording is pure observation: the solve performs identical
    IEEE-754 operations with or without a trace attached.
    """

    __slots__ = (
        "deltas",
        "freeze_round",
        "full_round",
        "binding_channels",
        "binding_caps",
    )

    def __init__(self) -> None:
        self.deltas: list[float] = []
        self.freeze_round: dict[Hashable, int] = {}
        self.full_round: dict[ChannelId, int] = {}
        self.binding_channels: list[tuple[ChannelId, ...]] = []
        self.binding_caps: list[tuple[Hashable, ...]] = []


@dataclass(frozen=True)
class FlowSpec:
    """One flow's demand: the channels it crosses and its private cap.

    ``channels`` lists every directional channel the flow occupies
    (one per hop of its route).  ``cap`` bounds the flow's rate
    regardless of how much share the channels would give it —
    ``math.inf`` means unbounded.  A flow with no channels is rate-
    limited only by its cap (e.g. a purely local HBM copy whose cap is
    the achievable memory bandwidth).
    """

    flow_id: Hashable
    channels: tuple[ChannelId, ...]
    cap: float = math.inf

    def __post_init__(self) -> None:
        if self.cap <= 0:
            raise SimulationError(f"flow {self.flow_id!r} cap must be positive")


# ---------------------------------------------------------------------------
# Progressive-filling core (one connected component at a time)
# ---------------------------------------------------------------------------


def _solve_component_python(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
    trace: "_Trace | None" = None,
) -> dict[Hashable, float]:
    """Scalar progressive filling over one (small) component.

    With ``bottlenecks`` (a dict to fill), each flow's freeze reason is
    recorded as a side product: the first channel in the flow's channel
    tuple that was full at its freeze iteration, or ``None`` when the
    flow froze at its own cap.  With ``trace``, the round structure is
    recorded for dirty-set replay.  Attribution and tracing only *read*
    solver state, so the returned rates are bit-identical either way.
    """
    rate: dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    unfrozen: set[Hashable] = set(rate)
    flows_by_id = {f.flow_id: f for f in flows}

    members: dict[ChannelId, set[Hashable]] = {}
    for flow in flows:
        for channel in flow.channels:
            members.setdefault(channel, set()).add(flow.flow_id)
    residual: dict[ChannelId, float] = {
        channel: capacities[channel] for channel in members
    }

    # Each iteration freezes at least one flow, so the loop runs at
    # most len(flows) times.
    round_index = 0
    while unfrozen:
        delta = math.inf
        for channel, group in members.items():
            active = group & unfrozen
            if active:
                delta = min(delta, residual[channel] / len(active))
        for flow_id in unfrozen:
            flow = flows_by_id[flow_id]
            if flow.cap is not math.inf:
                delta = min(delta, flow.cap - rate[flow_id])

        if delta is math.inf:
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{sorted(map(repr, unfrozen))}"
            )
        delta = max(delta, 0.0)

        if trace is not None:
            binding_ch = []
            for channel, group in members.items():
                active = group & unfrozen
                if active and residual[channel] / len(active) == delta:
                    binding_ch.append(channel)
            binding_cap = []
            for flow_id in unfrozen:
                flow = flows_by_id[flow_id]
                if flow.cap is not math.inf and flow.cap - rate[flow_id] == delta:
                    binding_cap.append(flow_id)
            trace.deltas.append(delta)
            trace.binding_channels.append(tuple(binding_ch))
            trace.binding_caps.append(tuple(binding_cap))

        for flow_id in unfrozen:
            rate[flow_id] += delta
        for channel, group in members.items():
            active = group & unfrozen
            if active:
                residual[channel] -= delta * len(active)

        frozen_now: set[Hashable] = set()
        full: set[ChannelId] = set()
        for channel, group in members.items():
            if residual[channel] <= _CHANNEL_SLACK * capacities[channel]:
                full.add(channel)
                frozen_now |= group & unfrozen
        if bottlenecks is not None:
            for flow_id in frozen_now:
                # A channel-frozen flow crosses at least one full channel;
                # blame the first one in its route for determinism.
                for channel in flows_by_id[flow_id].channels:
                    if channel in full:
                        bottlenecks[flow_id] = channel
                        break
        for flow_id in unfrozen:
            flow = flows_by_id[flow_id]
            if flow.cap is not math.inf and rate[flow_id] >= flow.cap - _CAP_SLACK * flow.cap:
                if bottlenecks is not None and flow_id not in frozen_now:
                    bottlenecks[flow_id] = None  # cap-bound, not channel-bound
                rate[flow_id] = flow.cap
                frozen_now.add(flow_id)
        if not frozen_now:
            raise SimulationError("progressive filling made no progress")
        if trace is not None:
            for channel in full:
                trace.full_round.setdefault(channel, round_index)
            for flow_id in frozen_now:
                trace.freeze_round[flow_id] = round_index
        unfrozen -= frozen_now
        round_index += 1

    return rate


def _solve_component_numpy(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
    trace: "_Trace | None" = None,
) -> dict[Hashable, float]:
    """Vectorized progressive filling over one (large) component.

    Performs the same IEEE-754 operations as the scalar loop
    element-wise (divisions, min-selection, subtraction), so the
    result is bit-identical to :func:`_solve_component_python`.
    Bottleneck attribution (see the scalar core) and trace recording
    only read solver state and use the same tie-break rules, so the
    two cores also agree on freeze reasons and traces.
    """
    n = len(flows)
    channel_index: dict[ChannelId, int] = {}
    for flow in flows:
        for channel in flow.channels:
            if channel not in channel_index:
                channel_index[channel] = len(channel_index)
    m = len(channel_index)
    channels_by_index = list(channel_index)

    incidence = _np.zeros((m, n), dtype=bool)
    for j, flow in enumerate(flows):
        for channel in flow.channels:
            incidence[channel_index[channel], j] = True

    capacity = _np.empty(m, dtype=float)
    for channel, i in channel_index.items():
        capacity[i] = capacities[channel]
    residual = capacity.copy()
    caps = _np.array([flow.cap for flow in flows], dtype=float)
    finite_cap = _np.isfinite(caps)
    rate = _np.zeros(n, dtype=float)
    unfrozen = _np.ones(n, dtype=bool)

    round_index = 0
    was_full = _np.zeros(m, dtype=bool)
    while unfrozen.any():
        # Per-channel count of active (unfrozen) flows.
        active_counts = incidence @ unfrozen.astype(_np.intp)
        delta = math.inf
        occupied = active_counts > 0
        if occupied.any():
            delta = float((residual[occupied] / active_counts[occupied]).min())
        headroom_mask = finite_cap & unfrozen
        if headroom_mask.any():
            delta = min(delta, float((caps[headroom_mask] - rate[headroom_mask]).min()))

        if delta is math.inf or delta == math.inf:
            ids = [flows[j].flow_id for j in range(n) if unfrozen[j]]
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{sorted(map(repr, ids))}"
            )
        delta = max(delta, 0.0)

        if trace is not None:
            binding = _np.zeros(m, dtype=bool)
            binding[occupied] = (
                residual[occupied] / active_counts[occupied]
            ) == delta
            trace.binding_channels.append(
                tuple(channels_by_index[i] for i in _np.nonzero(binding)[0])
            )
            cap_binding = _np.zeros(n, dtype=bool)
            if headroom_mask.any():
                cap_binding[headroom_mask] = (
                    caps[headroom_mask] - rate[headroom_mask]
                ) == delta
            trace.binding_caps.append(
                tuple(flows[j].flow_id for j in _np.nonzero(cap_binding)[0])
            )
            trace.deltas.append(delta)

        rate[unfrozen] += delta
        residual[occupied] -= delta * active_counts[occupied]

        frozen_now = _np.zeros(n, dtype=bool)
        full = residual <= _CHANNEL_SLACK * capacity
        if full.any():
            frozen_now |= (incidence[full].any(axis=0)) & unfrozen
            if bottlenecks is not None:
                full_ids = {
                    channel for channel, i in channel_index.items() if full[i]
                }
                for j in _np.nonzero(frozen_now)[0]:
                    flow = flows[j]
                    for channel in flow.channels:
                        if channel in full_ids:
                            bottlenecks[flow.flow_id] = channel
                            break
        if headroom_mask.any():
            capped = _np.zeros(n, dtype=bool)
            capped[headroom_mask] = rate[headroom_mask] >= (
                caps[headroom_mask] - _CAP_SLACK * caps[headroom_mask]
            )
            if capped.any():
                if bottlenecks is not None:
                    # Channel attribution wins ties, matching the scalar core.
                    for j in _np.nonzero(capped & ~frozen_now)[0]:
                        bottlenecks[flows[j].flow_id] = None
                rate[capped] = caps[capped]
                frozen_now |= capped
        if not frozen_now.any():
            raise SimulationError("progressive filling made no progress")
        if trace is not None:
            for i in _np.nonzero(full & ~was_full)[0]:
                trace.full_round[channels_by_index[i]] = round_index
            was_full |= full
            for j in _np.nonzero(frozen_now)[0]:
                trace.freeze_round[flows[j].flow_id] = round_index
        unfrozen &= ~frozen_now
        round_index += 1

    return {flow.flow_id: float(rate[j]) for j, flow in enumerate(flows)}


def _solve_component(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
    trace: "_Trace | None" = None,
) -> dict[Hashable, float]:
    """Level one connected component; dispatches scalar vs vectorized."""
    if not flows:
        return {}
    if len(flows) == 1:
        # Fast path: a lone flow takes min(cap, narrowest channel).
        flow = flows[0]
        best = flow.cap
        for channel in flow.channels:
            capacity = capacities[channel]
            if capacity < best:
                best = capacity
        if best is math.inf or best == math.inf:
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{[repr(flow.flow_id)]}"
            )
        if bottlenecks is not None:
            # Mirror the iterative cores' freeze conditions: blame the
            # first channel with no slack above the allocation; a flow
            # with slack everywhere froze at its own cap.
            bottleneck: ChannelId | None = None
            for channel in flow.channels:
                capacity = capacities[channel]
                if capacity - best <= _CHANNEL_SLACK * capacity:
                    bottleneck = channel
                    break
            bottlenecks[flow.flow_id] = bottleneck
        return {flow.flow_id: best}
    if _np is not None and len(flows) >= _VECTORIZE_THRESHOLD:
        return _solve_component_numpy(flows, capacities, bottlenecks, trace)
    return _solve_component_python(flows, capacities, bottlenecks, trace)


def _resume_fill(
    flows_by_id: "dict[Hashable, FlowSpec]",
    rate: "dict[Hashable, float]",
    members: "dict[ChannelId, set[Hashable]]",
    residual: "dict[ChannelId, float]",
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None",
    trace: _Trace,
    round_index: int,
) -> dict[Hashable, float]:
    """Continue scalar progressive filling from a reconstructed state.

    Performs exactly the operations :func:`_solve_component_python`
    would from round ``round_index`` of a solve whose state (rates of
    the unfrozen flows, residuals of their channels) has been
    reconstructed bitwise — so the resumed suffix is bit-identical to
    the tail of a full re-solve.  Mutates ``rate`` and ``residual`` in
    place and appends the suffix rounds to ``trace``.
    """
    unfrozen: set[Hashable] = set(rate)
    while unfrozen:
        delta = math.inf
        for channel, group in members.items():
            active = group & unfrozen
            if active:
                delta = min(delta, residual[channel] / len(active))
        for flow_id in unfrozen:
            flow = flows_by_id[flow_id]
            if flow.cap is not math.inf:
                delta = min(delta, flow.cap - rate[flow_id])

        if delta is math.inf:
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{sorted(map(repr, unfrozen))}"
            )
        delta = max(delta, 0.0)

        binding_ch = []
        for channel, group in members.items():
            active = group & unfrozen
            if active and residual[channel] / len(active) == delta:
                binding_ch.append(channel)
        binding_cap = []
        for flow_id in unfrozen:
            flow = flows_by_id[flow_id]
            if flow.cap is not math.inf and flow.cap - rate[flow_id] == delta:
                binding_cap.append(flow_id)
        trace.deltas.append(delta)
        trace.binding_channels.append(tuple(binding_ch))
        trace.binding_caps.append(tuple(binding_cap))

        for flow_id in unfrozen:
            rate[flow_id] += delta
        for channel, group in members.items():
            active = group & unfrozen
            if active:
                residual[channel] -= delta * len(active)

        frozen_now: set[Hashable] = set()
        full: set[ChannelId] = set()
        for channel, group in members.items():
            if residual[channel] <= _CHANNEL_SLACK * capacities[channel]:
                full.add(channel)
                frozen_now |= group & unfrozen
        if bottlenecks is not None:
            for flow_id in frozen_now:
                for channel in flows_by_id[flow_id].channels:
                    if channel in full:
                        bottlenecks[flow_id] = channel
                        break
        for flow_id in unfrozen:
            flow = flows_by_id[flow_id]
            if flow.cap is not math.inf and rate[flow_id] >= flow.cap - _CAP_SLACK * flow.cap:
                if bottlenecks is not None and flow_id not in frozen_now:
                    bottlenecks[flow_id] = None
                rate[flow_id] = flow.cap
                frozen_now.add(flow_id)
        if not frozen_now:
            raise SimulationError("progressive filling made no progress")
        for channel in full:
            trace.full_round.setdefault(channel, round_index)
        for flow_id in frozen_now:
            trace.freeze_round[flow_id] = round_index
        unfrozen -= frozen_now
        round_index += 1

    return rate


def _connected_components(
    flows: Sequence[FlowSpec],
) -> list[list[FlowSpec]]:
    """Partition flows into maximal sets coupled through shared channels.

    Order is deterministic: components appear in order of their first
    flow, and flows keep their input order within a component.
    """
    parent: dict[int, int] = {i: i for i in range(len(flows))}

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    first_on_channel: dict[ChannelId, int] = {}
    for i, flow in enumerate(flows):
        for channel in flow.channels:
            j = first_on_channel.setdefault(channel, i)
            if j != i:
                parent[find(i)] = find(j)

    grouped: dict[int, list[FlowSpec]] = {}
    for i, flow in enumerate(flows):
        grouped.setdefault(find(i), []).append(flow)
    return list(grouped.values())


def _validate_problem(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
) -> None:
    ids = [f.flow_id for f in flows]
    if len(set(ids)) != len(ids):
        raise SimulationError("duplicate flow ids in fair-share problem")
    for flow in flows:
        for channel in flow.channels:
            if channel not in capacities:
                raise SimulationError(
                    f"flow {flow.flow_id!r} uses unknown channel {channel!r}"
                )
    # Only channels actually carrying flows must have positive capacity:
    # a failed link (capacity 0) may sit in the inventory as long as all
    # traffic has been failed over or rerouted off it first.
    referenced = {channel for flow in flows for channel in flow.channels}
    for channel in referenced:
        if capacities[channel] <= 0:
            raise SimulationError(f"channel {channel!r} capacity must be positive")


def max_min_fair_rates(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
) -> dict[Hashable, float]:
    """Solve the max-min fair allocation (batch).

    Parameters
    ----------
    flows:
        Flow demands.  Flow ids must be unique.
    capacities:
        Capacity (bytes/s) of every channel referenced by a flow.
    bottlenecks:
        Optional dict filled with each flow's freeze reason: the first
        channel of the flow's tuple that was saturated when the flow
        froze, or ``None`` when it froze at its own cap.

    Returns
    -------
    dict mapping flow id to its allocated rate.

    Raises
    ------
    SimulationError
        On duplicate flow ids, unknown channels, or non-positive
        capacities.
    """
    if not flows:
        return {}
    _validate_problem(flows, capacities)

    rates: dict[Hashable, float] = {}
    for component in _connected_components(flows):
        rates.update(_solve_component(component, capacities, bottlenecks))
    # Preserve input order in the result for deterministic iteration.
    return {f.flow_id: rates[f.flow_id] for f in flows}


def max_min_fair_rates_reference(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
) -> dict[Hashable, float]:
    """The pre-decomposition global solver (perf baseline / oracle).

    Runs progressive filling over the *whole* system at once, exactly
    as the solver did before component decomposition.  Kept for the
    flow-churn perf baseline in ``repro perf`` and as a semantic
    cross-check: it agrees with :func:`max_min_fair_rates` to within
    floating-point accumulation order (not necessarily bitwise).
    ``bottlenecks``, when given, is filled with each flow's freeze
    reason exactly as in :func:`max_min_fair_rates`.
    """
    if not flows:
        return {}
    _validate_problem(flows, capacities)
    return _solve_component_python(flows, capacities, bottlenecks)


# ---------------------------------------------------------------------------
# Incremental solver
# ---------------------------------------------------------------------------


@dataclass
class SolverStats:
    """Work counters of a :class:`FairshareSolver` (for ``Session.stats``).

    Counters accumulate over the solver's lifetime.  Callers that want
    per-run numbers (``Session.stats()``, ``repro perf``) call
    :meth:`reset` at run boundaries — see ``Session.run``.
    """

    flows_added: int = 0
    flows_removed: int = 0
    component_solves: int = 0
    flows_releveled: int = 0
    largest_component: int = 0
    capacity_changes: int = 0
    #: Churn operations absorbed by dirty-set replay (no full solve).
    dirty_relevels: int = 0
    #: Frontier flows re-solved by dirty-set suffix solves.
    frontier_releveled: int = 0
    #: Recorded rounds replayed (certified unchanged) across dirty ops.
    replay_rounds: int = 0
    #: Solves that skipped trace recording under replay backoff.
    trace_skips: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict rendering for reports and BENCH json."""
        return {
            "flows_added": self.flows_added,
            "flows_removed": self.flows_removed,
            "component_solves": self.component_solves,
            "flows_releveled": self.flows_releveled,
            "largest_component": self.largest_component,
            "capacity_changes": self.capacity_changes,
            "dirty_relevels": self.dirty_relevels,
            "frontier_releveled": self.frontier_releveled,
            "replay_rounds": self.replay_rounds,
            "trace_skips": self.trace_skips,
        }

    def reset(self) -> None:
        """Zero every counter (run boundary for per-run reporting)."""
        for name in self.as_dict():
            setattr(self, name, 0)

    def publish(self, metrics: "Any") -> None:
        """Mirror the counters into a metrics registry (no-op if disabled).

        Writes absolute values (the stats are cumulative since the last
        :meth:`reset`), so publishing repeatedly is idempotent.
        """
        if not metrics:
            return
        for name, value in self.as_dict().items():
            if name == "largest_component":
                metrics.gauge(f"solver/{name}").set(value)
            else:
                metrics.counter(f"solver/{name}").value = value


class FairshareSolver:
    """Incremental max-min fair solver over a fixed channel inventory.

    The solver owns the constraint state — channel capacities, live
    flows, per-channel membership, and the connected-component
    partition — and keeps the allocation of every live flow cached.
    :meth:`add_flow` merges the components the new flow touches and
    re-levels only that merged component; :meth:`remove_flow` splits
    the departed flow's component back into its maximal pieces and
    re-levels each.  Untouched components keep their cached rates, so
    churn cost scales with coupling, not system size.

    Invariant: after any sequence of add/remove operations,
    :meth:`rates` equals ``max_min_fair_rates(live_flows, capacities)``
    bit-for-bit (both level identical components with the identical
    core).

    With ``dirty=True`` the solver additionally keeps, per component, a
    :class:`_Trace` of its last solve and *replays* it on churn:
    recorded rounds whose binding constraints are untouched by the
    change are certified unchanged (the clean flows keep their cached
    rates bitwise), and the solve resumes generically only from the
    first round the change can influence — re-leveling the *frontier*
    of flows at or above the perturbed fill level instead of the whole
    component.  Because certified rounds reproduce the exact IEEE-754
    state the full per-component core would reach, the dirty-set result
    is bit-identical to a full re-solve (differential-tested).
    """

    def __init__(
        self,
        capacities: Mapping[ChannelId, float] | None = None,
        *,
        track_bottlenecks: bool = False,
        dirty: bool = False,
    ) -> None:
        self._capacities: dict[ChannelId, float] = {}
        self._flows: dict[Hashable, FlowSpec] = {}
        self._rates: dict[Hashable, float] = {}
        self._members: dict[ChannelId, set[Hashable]] = {}
        self._component_of: dict[Hashable, int] = {}
        # Component membership as insertion-ordered id sets (dict keys):
        # O(1) add/discard keeps churn bookkeeping O(affected), not
        # O(component).
        self._components: dict[int, dict[Hashable, None]] = {}
        self._component_ids = itertools.count()
        self._track_bottlenecks = bool(track_bottlenecks)
        self._bottlenecks: dict[Hashable, ChannelId | None] = {}
        self._dirty = bool(dirty)
        self._traces: dict[int, _Trace] = {}
        #: Per component: consecutive replays that diverged at round 0
        #: (see :data:`_REPLAY_BACKOFF`); reset on any replay success.
        self._replay_failures: dict[int, int] = {}
        self.stats = SolverStats()
        if capacities:
            for channel, capacity in capacities.items():
                self.add_channel(channel, capacity)

    @property
    def dirty_releveling(self) -> bool:
        """Whether this solver replays solve traces on churn."""
        return self._dirty

    # -- channel inventory ---------------------------------------------------

    def add_channel(self, channel: ChannelId, capacity: float) -> None:
        """Register a channel; duplicate ids or bad capacities raise."""
        if channel in self._capacities:
            raise SimulationError(f"channel {channel!r} already exists")
        if capacity <= 0:
            raise SimulationError(f"channel {channel!r} capacity must be positive")
        self._capacities[channel] = capacity

    def set_capacity(
        self, channel: ChannelId, capacity: float
    ) -> dict[Hashable, float]:
        """Change a channel's capacity; re-levels the affected component.

        Every flow crossing the channel belongs (by definition) to one
        connected component; that component is re-leveled with the same
        per-component core as :meth:`add_flow`/:meth:`remove_flow`, so
        the post-change allocation is bit-identical to tearing down and
        re-adding every flow under the new capacity.  Returns the
        re-leveled rates (empty when no flow crosses the channel).

        Capacity 0 models a failed link and is only accepted while the
        channel is empty: progressive filling would freeze crossing
        flows at rate 0, which the flow network treats as starvation —
        fail or reroute them *before* zeroing the capacity.
        """
        if channel not in self._capacities:
            raise SimulationError(f"unknown channel {channel!r}")
        if capacity < 0:
            raise SimulationError(
                f"channel {channel!r} capacity must be non-negative"
            )
        members = self._members.get(channel)
        if capacity == 0 and members:
            raise SimulationError(
                f"channel {channel!r} cannot drop to zero capacity with "
                f"{len(members)} live flows; fail or reroute them first"
            )
        if capacity == self._capacities[channel]:
            return {}
        self._capacities[channel] = capacity
        self.stats.capacity_changes += 1
        if not members:
            return {}
        comp = self._component_of[next(iter(members))]
        flow_ids = self._components[comp]
        solved = self._replay(comp, flow_ids, comp, (channel,), (), frozenset())
        if solved is not None:
            return solved
        return self._relevel(flow_ids, comp)

    def has_channel(self, channel: ChannelId) -> bool:
        """Whether a channel id is registered."""
        return channel in self._capacities

    def capacities(self) -> dict[ChannelId, float]:
        """``{channel id: capacity}`` snapshot."""
        return dict(self._capacities)

    # -- flow churn ----------------------------------------------------------

    def add_flow(self, spec: FlowSpec) -> dict[Hashable, float]:
        """Admit a flow; re-levels and returns the rates of its component."""
        if spec.flow_id in self._flows:
            raise SimulationError(f"duplicate flow id {spec.flow_id!r}")
        for channel in spec.channels:
            if channel not in self._capacities:
                raise SimulationError(
                    f"flow {spec.flow_id!r} uses unknown channel {channel!r}"
                )
        if not spec.channels and spec.cap is math.inf:
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{[repr(spec.flow_id)]}"
            )

        # All members of one channel share one component by definition,
        # so a single representative per channel finds every touched
        # component in O(channels), not O(degree).
        touched: list[int] = []
        seen: set[int] = set()
        for channel in spec.channels:
            group = self._members.get(channel)
            if group:
                comp = self._component_of[next(iter(group))]
                if comp not in seen:
                    seen.add(comp)
                    touched.append(comp)

        self._flows[spec.flow_id] = spec
        for channel in spec.channels:
            self._members.setdefault(channel, set()).add(spec.flow_id)
        self.stats.flows_added += 1

        if len(touched) == 1:
            # The flow joined exactly one component: keep its id (no
            # relabeling) and replay its trace with the new flow's
            # channels as the dirty set.
            comp = touched[0]
            members = self._components[comp]
            members[spec.flow_id] = None
            self._component_of[spec.flow_id] = comp
            solved = self._replay(
                comp, members, comp, spec.channels, (spec,), frozenset()
            )
            if solved is not None:
                return solved
            return self._relevel(members, comp)

        # A merge (or a fresh singleton): absorb the smaller components
        # into the largest (weighted union, O(smaller)) and solve
        # outright — no single parent trace matches the merged problem.
        if touched:
            comp = max(touched, key=lambda c: len(self._components[c]))
            merged = self._components[comp]
            for other in touched:
                self._traces.pop(other, None)
                self._replay_failures.pop(other, None)
                if other == comp:
                    continue
                for flow_id in self._components.pop(other):
                    merged[flow_id] = None
                    self._component_of[flow_id] = comp
        else:
            comp = next(self._component_ids)
            merged = self._components[comp] = {}
        merged[spec.flow_id] = None
        self._component_of[spec.flow_id] = comp
        return self._relevel(merged, comp)

    def remove_flow(self, flow_id: Hashable) -> dict[Hashable, float]:
        """Retire a flow; re-levels and returns the rates of the remainder."""
        spec = self._flows.pop(flow_id, None)
        if spec is None:
            raise SimulationError(f"unknown flow id {flow_id!r}")
        self._rates.pop(flow_id, None)
        self._bottlenecks.pop(flow_id, None)
        occupied: list[set[Hashable]] = []
        seen_channels: set[ChannelId] = set()
        for channel in spec.channels:
            if channel in seen_channels:
                continue
            seen_channels.add(channel)
            group = self._members.get(channel)
            if group is not None:
                group.discard(flow_id)
                if not group:
                    del self._members[channel]
                else:
                    occupied.append(group)

        comp = self._component_of.pop(flow_id)
        comp_members = self._components[comp]
        del comp_members[flow_id]
        self.stats.flows_removed += 1
        if not comp_members:
            del self._components[comp]
            self._traces.pop(comp, None)
            self._replay_failures.pop(comp, None)
            return {}

        # Removal can only disconnect the component if the departed
        # flow bridged two of its (still occupied) channels and no
        # other flow carries that bridge.  A leaf flow (≤1 occupied
        # channel) or a common carrier crossing all of them proves
        # connectivity in O(degree) — skipping the component scan.
        preserved = len(occupied) <= 1
        if not preserved:
            smallest = min(occupied, key=len)
            for candidate in smallest:
                channels = self._flows[candidate].channels
                if all(channel in channels for channel in seen_channels
                       if channel in self._members):
                    preserved = True
                    break
        if not preserved:
            pieces = self._split_components(list(comp_members))
            if len(pieces) > 1:
                del self._components[comp]
                self._traces.pop(comp, None)
                self._replay_failures.pop(comp, None)
                updated: dict[Hashable, float] = {}
                for piece in pieces:
                    piece_comp = next(self._component_ids)
                    self._components[piece_comp] = dict.fromkeys(piece)
                    for member in piece:
                        self._component_of[member] = piece_comp
                    updated.update(self._relevel(piece, piece_comp))
                return updated

        # The component stayed connected: keep its id and replay its
        # trace with the departed flow's channels dirty.
        solved = self._replay(
            comp, comp_members, comp, spec.channels, (), {flow_id}
        )
        if solved is not None:
            return solved
        return self._relevel(comp_members, comp)

    def _split_components(
        self, flow_ids: Sequence[Hashable]
    ) -> list[list[Hashable]]:
        """Maximal connected pieces of a former component's remainder."""
        remaining = set(flow_ids)
        pieces: list[list[Hashable]] = []
        unvisited = set(remaining)
        for seed in flow_ids:  # deterministic seed order
            if seed not in unvisited:
                continue
            stack = [seed]
            unvisited.discard(seed)
            piece: set[Hashable] = {seed}
            while stack:
                current = stack.pop()
                for channel in self._flows[current].channels:
                    for neighbour in self._members.get(channel, ()):
                        if neighbour in unvisited:
                            unvisited.discard(neighbour)
                            piece.add(neighbour)
                            stack.append(neighbour)
            # Keep original order within the piece for determinism.
            pieces.append([f for f in flow_ids if f in piece])
        return pieces

    def _relevel(
        self, flow_ids: Iterable[Hashable], comp_id: int | None = None
    ) -> dict[Hashable, float]:
        component = [self._flows[f] for f in flow_ids]
        trace: _Trace | None = None
        if (
            self._dirty
            and comp_id is not None
            and len(component) >= _DIRTY_THRESHOLD
        ):
            failures = self._replay_failures.get(comp_id, 0)
            if failures < _REPLAY_BACKOFF:
                trace = _Trace()
            else:
                # Backed off: replay keeps diverging at round 0 for
                # this component, so solve without the recording
                # overhead.  Advance the probe clock and record one
                # trace per period to detect a regime change.
                self._replay_failures[comp_id] = failures + 1
                if (
                    failures - _REPLAY_BACKOFF
                ) % _REPLAY_PROBE == _REPLAY_PROBE - 1:
                    trace = _Trace()
                else:
                    self.stats.trace_skips += 1
        bottlenecks = self._bottlenecks if self._track_bottlenecks else None
        solved = _solve_component(component, self._capacities, bottlenecks, trace)
        if trace is not None:
            self._traces[comp_id] = trace
        elif comp_id is not None:
            self._traces.pop(comp_id, None)
        self._rates.update(solved)
        self.stats.component_solves += 1
        self.stats.flows_releveled += len(component)
        if len(component) > self.stats.largest_component:
            self.stats.largest_component = len(component)
        return solved

    # -- dirty-set replay ----------------------------------------------------

    def _replay(
        self,
        old_comp: int,
        flow_ids: "dict[Hashable, None] | Sequence[Hashable]",
        store_comp: int,
        dirty_channels: Sequence[ChannelId],
        added: Sequence[FlowSpec],
        removed_ids: "set[Hashable] | frozenset",
    ) -> "dict[Hashable, float] | None":
        """Replay a component's recorded solve against a perturbation.

        Walks the trace of the component's last solve round by round.
        A round survives when (a) one of its recorded *binding*
        constraints is untouched by the change — certifying the round's
        delta bitwise — (b) no dirty channel or added-flow cap
        undercuts that delta, and (c) every dirty channel's saturation
        matches the recording.  Clean flows frozen in surviving rounds
        keep their cached rates and bottlenecks without any arithmetic.
        At the first round the change can influence, the exact solver
        state is reconstructed (folding the certified deltas, which
        reproduces the core's accumulation order bitwise) and
        progressive filling resumes generically over the *frontier* —
        the flows still unfrozen at that round.

        Returns the rates of every flow whose allocation was (re)solved
        — added flows plus the frontier — or ``None`` when no trace is
        available (caller falls back to a full re-level).  Structural
        state (``_flows``/``_members``/``_components``) must already
        reflect the perturbation.
        """
        trace = self._traces.pop(old_comp, None)
        if trace is None or not self._dirty:
            return None

        capacities = self._capacities
        deltas = trace.deltas
        nrounds = len(deltas)
        freeze_round = trace.freeze_round
        full_round = trace.full_round

        # Deterministically ordered, deduplicated dirty channel list.
        dirty_list: list[ChannelId] = []
        dirty_set: set[ChannelId] = set()
        for channel in dirty_channels:
            if channel not in dirty_set:
                dirty_set.add(channel)
                dirty_list.append(channel)

        a_spec: dict[Hashable, FlowSpec] = {f.flow_id: f for f in added}
        a_rate: dict[Hashable, float] = {f.flow_id: 0.0 for f in added}
        a_frozen: dict[Hashable, int] = {}
        a_bottleneck: dict[Hashable, "ChannelId | None"] = {}

        # Per dirty channel: residual fold state, the sorted freeze
        # rounds of its clean members (for O(1) active counts as the
        # round index advances), and its unfrozen added members.
        dres: dict[ChannelId, float] = {}
        dfull: dict[ChannelId, int] = {}
        clean_rounds: dict[ChannelId, list[int]] = {}
        ptr: dict[ChannelId, int] = {}
        added_on: dict[ChannelId, list[Hashable]] = {}
        for channel in dirty_list:
            dres[channel] = capacities[channel]
            rounds = [
                freeze_round[m]
                for m in self._members.get(channel, ())
                if m not in a_spec
            ]
            rounds.sort()
            clean_rounds[channel] = rounds
            ptr[channel] = 0
            added_on[channel] = [
                f.flow_id for f in added if channel in f.channels
            ]

        diverged = -1
        r = 0
        while r < nrounds:
            delta = deltas[r]
            # (a) certificate: an untouched constraint binds this round.
            orig_bch = trace.binding_channels[r]
            orig_bcap = trace.binding_caps[r]
            certified = False
            for channel in orig_bch:
                if channel not in dirty_set:
                    certified = True
                    break
            if not certified:
                for fid in orig_bcap:
                    if fid not in removed_ids:
                        certified = True
                        break
            if not certified:
                diverged = r
                break

            # (b) dirty terms must not undercut the certified delta.
            counts: dict[ChannelId, int] = {}
            dirty_binding: list[ChannelId] = []
            undercut = False
            for channel in dirty_list:
                if channel in dfull:
                    continue
                rounds = clean_rounds[channel]
                p = ptr[channel]
                while p < len(rounds) and rounds[p] < r:
                    p += 1
                ptr[channel] = p
                count = len(rounds) - p
                for fid in added_on[channel]:
                    if fid not in a_frozen:
                        count += 1
                if count == 0:
                    continue
                counts[channel] = count
                term = dres[channel] / count
                if term < delta:
                    undercut = True
                    break
                if term == delta:
                    dirty_binding.append(channel)
            if undercut:
                diverged = r
                break
            added_binding: list[Hashable] = []
            for fid, spec in a_spec.items():
                if fid in a_frozen or spec.cap is math.inf:
                    continue
                term = spec.cap - a_rate[fid]
                if term < delta:
                    undercut = True
                    break
                if term == delta:
                    added_binding.append(fid)
            if undercut:
                diverged = r
                break

            # Apply the certified delta to the dirty state (snapshot
            # first: a saturation mismatch must rewind to round start).
            snap_res = {
                channel: dres[channel] for channel in counts
            }
            snap_rate = dict(a_rate)
            for channel, count in counts.items():
                dres[channel] -= delta * count
            for fid in a_spec:
                if fid not in a_frozen:
                    a_rate[fid] += delta

            # (c) dirty saturation must match the recording.
            newly_full: list[ChannelId] = []
            mismatch = False
            for channel in dirty_list:
                if channel in dfull:
                    continue
                now_full = (
                    dres[channel] <= _CHANNEL_SLACK * capacities[channel]
                )
                if now_full != (full_round.get(channel) == r):
                    mismatch = True
                    break
                if now_full:
                    newly_full.append(channel)
            if mismatch:
                dres.update(snap_res)
                a_rate = snap_rate
                diverged = r
                break
            for channel in newly_full:
                dfull[channel] = r

            # Freeze added flows exactly as the core would: channel
            # attribution first, cap clamp second (clamping also the
            # channel-frozen, without stealing their attribution).
            for fid, spec in a_spec.items():
                if fid in a_frozen:
                    continue
                bottleneck: ChannelId | None = None
                for channel in spec.channels:
                    if channel in dfull:
                        bottleneck = channel
                        break
                cap = spec.cap
                capped = cap is not math.inf and a_rate[fid] >= cap - _CAP_SLACK * cap
                if bottleneck is not None:
                    a_frozen[fid] = r
                    a_bottleneck[fid] = bottleneck
                    if capped:
                        a_rate[fid] = cap
                elif capped:
                    a_frozen[fid] = r
                    a_bottleneck[fid] = None
                    a_rate[fid] = cap

            # Patch this round's binding record in place if the dirty
            # set touched it (stale equalities would mis-certify later
            # replays; untouched rounds keep their tuples allocation-free).
            rebuilt_bch = dirty_binding or any(
                channel in dirty_set for channel in orig_bch
            )
            if rebuilt_bch:
                trace.binding_channels[r] = (
                    tuple(c for c in orig_bch if c not in dirty_set)
                    + tuple(dirty_binding)
                )
            rebuilt_bcap = added_binding or (
                removed_ids and any(fid in removed_ids for fid in orig_bcap)
            )
            if rebuilt_bcap:
                trace.binding_caps[r] = (
                    tuple(f for f in orig_bcap if f not in removed_ids)
                    + tuple(added_binding)
                )
            r += 1

        if diverged < 0:
            self._replay_failures.pop(store_comp, None)
            return self._replay_commit(
                trace, store_comp, dirty_list, dirty_set, dfull, dres,
                clean_rounds, added_on, a_spec, a_rate, a_frozen,
                a_bottleneck, removed_ids, nrounds,
            )
        if diverged == 0:
            # Nothing certified: the frontier is the whole component, so
            # a full (vectorized) re-solve beats a scalar resume.
            self._replay_failures[store_comp] = (
                self._replay_failures.get(store_comp, 0) + 1
            )
            return None
        self._replay_failures.pop(store_comp, None)
        return self._replay_resume(
            trace, flow_ids, store_comp, dirty_set, dfull, dres,
            a_spec, a_rate, a_frozen, a_bottleneck, removed_ids, diverged,
        )

    def _replay_commit(
        self,
        trace: _Trace,
        store_comp: int,
        dirty_list: "list[ChannelId]",
        dirty_set: "set[ChannelId]",
        dfull: "dict[ChannelId, int]",
        dres: "dict[ChannelId, float]",
        clean_rounds: "dict[ChannelId, list[int]]",
        added_on: "dict[ChannelId, list[Hashable]]",
        a_spec: "dict[Hashable, FlowSpec]",
        a_rate: "dict[Hashable, float]",
        a_frozen: "dict[Hashable, int]",
        a_bottleneck: "dict[Hashable, ChannelId | None]",
        removed_ids: "set[Hashable] | frozenset",
        nrounds: int,
    ) -> dict[Hashable, float]:
        """Finish a fully-certified replay: continuation + bookkeeping.

        Every recorded round survived, so only added flows can still be
        unfrozen; progressive filling continues over them and the dirty
        channels alone — the exact rounds a full solve would append,
        since every original constraint is exhausted.
        """
        r = nrounds
        while len(a_frozen) < len(a_spec):
            delta = math.inf
            counts: dict[ChannelId, int] = {}
            for channel in dirty_list:
                if channel in dfull:
                    continue
                count = 0
                for fid in added_on[channel]:
                    if fid not in a_frozen:
                        count += 1
                if count == 0:
                    continue
                counts[channel] = count
                delta = min(delta, dres[channel] / count)
            for fid, spec in a_spec.items():
                if fid not in a_frozen and spec.cap is not math.inf:
                    delta = min(delta, spec.cap - a_rate[fid])
            if delta is math.inf or delta == math.inf:
                ids = [repr(f) for f in a_spec if f not in a_frozen]
                raise SimulationError(
                    "unconstrained flows (no channels and no cap): "
                    f"{sorted(ids)}"
                )
            delta = max(delta, 0.0)

            binding_ch = [
                channel
                for channel, count in counts.items()
                if dres[channel] / count == delta
            ]
            binding_cap = [
                fid
                for fid, spec in a_spec.items()
                if fid not in a_frozen
                and spec.cap is not math.inf
                and spec.cap - a_rate[fid] == delta
            ]
            trace.deltas.append(delta)
            trace.binding_channels.append(tuple(binding_ch))
            trace.binding_caps.append(tuple(binding_cap))

            for channel, count in counts.items():
                dres[channel] -= delta * count
            for fid in a_spec:
                if fid not in a_frozen:
                    a_rate[fid] += delta

            for channel in list(counts):
                if channel in dfull:
                    continue
                if dres[channel] <= _CHANNEL_SLACK * self._capacities[channel]:
                    dfull[channel] = r
            frozen_this_round = False
            for fid, spec in a_spec.items():
                if fid in a_frozen:
                    continue
                bottleneck: ChannelId | None = None
                for channel in spec.channels:
                    if channel in dfull:
                        bottleneck = channel
                        break
                cap = spec.cap
                capped = cap is not math.inf and a_rate[fid] >= cap - _CAP_SLACK * cap
                if bottleneck is not None:
                    a_frozen[fid] = r
                    a_bottleneck[fid] = bottleneck
                    if capped:
                        a_rate[fid] = cap
                    frozen_this_round = True
                elif capped:
                    a_frozen[fid] = r
                    a_bottleneck[fid] = None
                    a_rate[fid] = cap
                    frozen_this_round = True
            if not frozen_this_round:
                raise SimulationError("progressive filling made no progress")
            r += 1

        # Fix up the trace in place for the perturbed component.
        if removed_ids:
            for fid in removed_ids:
                trace.freeze_round.pop(fid, None)
        trace.freeze_round.update(a_frozen)
        for channel in dirty_list:
            trace.full_round.pop(channel, None)
        trace.full_round.update(dfull)
        self._traces[store_comp] = trace

        updated = dict(a_rate)
        self._rates.update(updated)
        if self._track_bottlenecks:
            for fid in a_spec:
                self._bottlenecks[fid] = a_bottleneck.get(fid)
        stats = self.stats
        stats.dirty_relevels += 1
        stats.replay_rounds += nrounds
        return updated

    def _replay_resume(
        self,
        trace: _Trace,
        flow_ids: "dict[Hashable, None] | Sequence[Hashable]",
        store_comp: int,
        dirty_set: "set[ChannelId]",
        dfull: "dict[ChannelId, int]",
        dres: "dict[ChannelId, float]",
        a_spec: "dict[Hashable, FlowSpec]",
        a_rate: "dict[Hashable, float]",
        a_frozen: "dict[Hashable, int]",
        a_bottleneck: "dict[Hashable, ChannelId | None]",
        removed_ids: "set[Hashable] | frozenset",
        diverged: int,
    ) -> dict[Hashable, float]:
        """Reconstruct solver state at the divergence round and resume.

        The rounds before ``diverged`` are certified bitwise, so the
        frontier's rates (a fold of the certified deltas) and the
        suffix channels' residuals (a fold of delta × active-count, in
        recording order) equal the full core's state exactly; resuming
        the scalar fill from there matches a full re-solve bit for bit.
        """
        capacities = self._capacities
        deltas = trace.deltas
        freeze_round = trace.freeze_round
        full_round = trace.full_round

        # Frontier: flows still unfrozen at the divergence round, in
        # component (admission) order.
        frontier: list[Hashable] = []
        for fid in flow_ids:
            if fid in a_spec:
                if fid not in a_frozen:
                    frontier.append(fid)
            elif freeze_round[fid] >= diverged:
                frontier.append(fid)

        # All clean frontier flows carry the identical certified fill.
        acc = 0.0
        for s in range(diverged):
            acc += deltas[s]

        flows_by_id: dict[Hashable, FlowSpec] = {}
        rate: dict[Hashable, float] = {}
        for fid in frontier:
            if fid in a_spec:
                flows_by_id[fid] = a_spec[fid]
                rate[fid] = a_rate[fid]
            else:
                flows_by_id[fid] = self._flows[fid]
                rate[fid] = acc

        # Suffix channels: every channel a frontier flow crosses (none
        # of them saturated yet — a saturated channel has no unfrozen
        # members).  Clean residuals fold the recorded deltas against
        # the channel's historic active counts, reproducing the core's
        # subtraction sequence bitwise.
        members: dict[ChannelId, set[Hashable]] = {}
        for fid in frontier:
            for channel in flows_by_id[fid].channels:
                members.setdefault(channel, set()).add(fid)
        residual: dict[ChannelId, float] = {}
        for channel in members:
            if channel in dirty_set:
                residual[channel] = dres[channel]
                continue
            rounds = sorted(
                freeze_round[m] for m in self._members.get(channel, ())
            )
            total = len(rounds)
            res = capacities[channel]
            p = 0
            for s in range(diverged):
                while p < total and rounds[p] < s:
                    p += 1
                count = total - p
                if count:
                    res -= deltas[s] * count
            residual[channel] = res

        # Truncate a copy of the trace at the divergence round; the
        # resumed fill appends its own rounds.
        resumed = _Trace()
        resumed.deltas = deltas[:diverged]
        resumed.binding_channels = trace.binding_channels[:diverged]
        resumed.binding_caps = trace.binding_caps[:diverged]
        for fid, rr in freeze_round.items():
            if rr < diverged and fid not in removed_ids:
                resumed.freeze_round[fid] = rr
        for fid, rr in a_frozen.items():
            resumed.freeze_round[fid] = rr
        for channel, rr in full_round.items():
            if rr < diverged and channel not in dirty_set:
                resumed.full_round[channel] = rr
        resumed.full_round.update(dfull)

        bottlenecks = self._bottlenecks if self._track_bottlenecks else None
        solved = _resume_fill(
            flows_by_id,
            rate,
            members,
            residual,
            capacities,
            bottlenecks,
            resumed,
            diverged,
        )
        self._traces[store_comp] = resumed

        for fid, r in a_frozen.items():
            solved.setdefault(fid, a_rate[fid])
        self._rates.update(solved)
        if self._track_bottlenecks:
            for fid, rr in a_frozen.items():
                self._bottlenecks[fid] = a_bottleneck.get(fid)
        stats = self.stats
        stats.dirty_relevels += 1
        stats.replay_rounds += diverged
        stats.frontier_releveled += len(frontier)
        if len(flow_ids) > stats.largest_component:
            stats.largest_component = len(flow_ids)
        return solved

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._flows

    def rate(self, flow_id: Hashable) -> float:
        """Cached allocation of one live flow."""
        try:
            return self._rates[flow_id]
        except KeyError:
            raise SimulationError(f"unknown flow id {flow_id!r}") from None

    def rates(self) -> dict[Hashable, float]:
        """``{flow id: rate}`` snapshot of every live flow."""
        return dict(self._rates)

    def component_of(self, flow_id: Hashable) -> tuple[Hashable, ...]:
        """The flow ids coupled (transitively) with ``flow_id``."""
        try:
            comp = self._component_of[flow_id]
        except KeyError:
            raise SimulationError(f"unknown flow id {flow_id!r}") from None
        return tuple(self._components[comp])

    def flows(self) -> list[FlowSpec]:
        """Live flow specs, in admission order."""
        return list(self._flows.values())

    def bottleneck(self, flow_id: Hashable) -> ChannelId | None:
        """The recorded freeze reason of one live flow.

        The channel that froze the flow at its last re-level, or
        ``None`` when the flow froze at its own cap.  Requires
        ``track_bottlenecks=True``; raises for unknown flow ids.
        """
        if not self._track_bottlenecks:
            raise SimulationError("solver was built without track_bottlenecks")
        if flow_id not in self._flows:
            raise SimulationError(f"unknown flow id {flow_id!r}")
        return self._bottlenecks.get(flow_id)

    def bottlenecks(self) -> dict[Hashable, ChannelId | None]:
        """``{flow id: freeze reason}`` snapshot (tracking solvers only)."""
        if not self._track_bottlenecks:
            raise SimulationError("solver was built without track_bottlenecks")
        return dict(self._bottlenecks)

    @property
    def tracks_bottlenecks(self) -> bool:
        """Whether this solver records freeze reasons."""
        return self._track_bottlenecks


def allocation_is_feasible(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    rates: Mapping[Hashable, float],
    *,
    rel_tol: float = 1e-6,
) -> bool:
    """Check capacity and cap feasibility of an allocation (for tests)."""
    load: dict[ChannelId, float] = {}
    for flow in flows:
        r = rates[flow.flow_id]
        if r < -rel_tol or r > flow.cap * (1 + rel_tol):
            return False
        for channel in flow.channels:
            load[channel] = load.get(channel, 0.0) + r
    for channel, total in load.items():
        if total > capacities[channel] * (1 + rel_tol):
            return False
    return True

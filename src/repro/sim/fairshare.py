"""Max-min fair rate allocation with per-flow caps ("water-filling").

Infinity Fabric links are modeled as independent directional channels
of fixed capacity.  Several flows may cross a channel simultaneously —
e.g. the eight CPU→GCD STREAM kernels of Fig. 5 each push a flow
through their NUMA domain's port — and the fabric arbitrates them
fairly.  We model that arbitration with the classic *progressive
filling* algorithm:

1. All unfrozen flows grow at the same rate.
2. The first constraint to bind — a channel reaching capacity or a
   flow reaching its own cap (SDMA engine limit, protocol-efficiency
   limit) — freezes the affected flows.
3. Repeat with the survivors until all flows are frozen.

The result is the unique max-min fair allocation.

Two entry points share one progressive-filling core:

- :func:`max_min_fair_rates` — the pure batch solve.  It decomposes
  the flow set into connected components (flows coupled transitively
  through shared channels) and levels each component independently;
  components are numerically independent, so this changes nothing
  semantically but bounds the work per component.
- :class:`FairshareSolver` — the incremental solver the fluid-flow
  network uses.  It keeps the component structure alive across flow
  arrivals and departures, so adding or removing one flow only
  re-levels the affected component instead of the whole system.
  Because both paths run the identical per-component core on
  identical component inputs, the incremental solution is
  *bit-identical* to the batch solution for the same flow set — a
  property the hypothesis churn tests pin.

The per-component core has a NumPy-vectorized inner loop for large
components and a plain-Python loop for small ones; both perform the
same IEEE-754 operations element-wise, so they agree bitwise too.

The batch function is pure (no engine state), which lets the test
suite verify its invariants exhaustively with hypothesis:

- no channel is over capacity,
- no flow exceeds its cap,
- every flow is bottlenecked somewhere (work conservation).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping, Sequence

from ..errors import SimulationError

try:  # NumPy is a hard dependency of the package, but keep the core
    import numpy as _np  # importable without it for the pure solver.
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

ChannelId = Hashable

#: Components at least this large take the vectorized inner loop.
_VECTORIZE_THRESHOLD = 8

#: Relative slack for "channel is full" / "flow reached its cap".
_CHANNEL_SLACK = 1e-6
_CAP_SLACK = 1e-9


@dataclass(frozen=True)
class FlowSpec:
    """One flow's demand: the channels it crosses and its private cap.

    ``channels`` lists every directional channel the flow occupies
    (one per hop of its route).  ``cap`` bounds the flow's rate
    regardless of how much share the channels would give it —
    ``math.inf`` means unbounded.  A flow with no channels is rate-
    limited only by its cap (e.g. a purely local HBM copy whose cap is
    the achievable memory bandwidth).
    """

    flow_id: Hashable
    channels: tuple[ChannelId, ...]
    cap: float = math.inf

    def __post_init__(self) -> None:
        if self.cap <= 0:
            raise SimulationError(f"flow {self.flow_id!r} cap must be positive")


# ---------------------------------------------------------------------------
# Progressive-filling core (one connected component at a time)
# ---------------------------------------------------------------------------


def _solve_component_python(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
) -> dict[Hashable, float]:
    """Scalar progressive filling over one (small) component.

    With ``bottlenecks`` (a dict to fill), each flow's freeze reason is
    recorded as a side product: the first channel in the flow's channel
    tuple that was full at its freeze iteration, or ``None`` when the
    flow froze at its own cap.  Attribution only *reads* solver state,
    so the returned rates are bit-identical either way.
    """
    rate: dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    unfrozen: set[Hashable] = set(rate)
    flows_by_id = {f.flow_id: f for f in flows}

    members: dict[ChannelId, set[Hashable]] = {}
    for flow in flows:
        for channel in flow.channels:
            members.setdefault(channel, set()).add(flow.flow_id)
    residual: dict[ChannelId, float] = {
        channel: capacities[channel] for channel in members
    }

    # Each iteration freezes at least one flow, so the loop runs at
    # most len(flows) times.
    while unfrozen:
        delta = math.inf
        for channel, group in members.items():
            active = group & unfrozen
            if active:
                delta = min(delta, residual[channel] / len(active))
        for flow_id in unfrozen:
            flow = flows_by_id[flow_id]
            if flow.cap is not math.inf:
                delta = min(delta, flow.cap - rate[flow_id])

        if delta is math.inf:
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{sorted(map(repr, unfrozen))}"
            )
        delta = max(delta, 0.0)

        for flow_id in unfrozen:
            rate[flow_id] += delta
        for channel, group in members.items():
            active = group & unfrozen
            if active:
                residual[channel] -= delta * len(active)

        frozen_now: set[Hashable] = set()
        full: set[ChannelId] = set()
        for channel, group in members.items():
            if residual[channel] <= _CHANNEL_SLACK * capacities[channel]:
                full.add(channel)
                frozen_now |= group & unfrozen
        if bottlenecks is not None:
            for flow_id in frozen_now:
                # A channel-frozen flow crosses at least one full channel;
                # blame the first one in its route for determinism.
                for channel in flows_by_id[flow_id].channels:
                    if channel in full:
                        bottlenecks[flow_id] = channel
                        break
        for flow_id in unfrozen:
            flow = flows_by_id[flow_id]
            if flow.cap is not math.inf and rate[flow_id] >= flow.cap - _CAP_SLACK * flow.cap:
                if bottlenecks is not None and flow_id not in frozen_now:
                    bottlenecks[flow_id] = None  # cap-bound, not channel-bound
                rate[flow_id] = flow.cap
                frozen_now.add(flow_id)
        if not frozen_now:
            raise SimulationError("progressive filling made no progress")
        unfrozen -= frozen_now

    return rate


def _solve_component_numpy(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
) -> dict[Hashable, float]:
    """Vectorized progressive filling over one (large) component.

    Performs the same IEEE-754 operations as the scalar loop
    element-wise (divisions, min-selection, subtraction), so the
    result is bit-identical to :func:`_solve_component_python`.
    Bottleneck attribution (see the scalar core) only reads solver
    state and uses the same tie-break rules, so the two cores also
    agree on the recorded freeze reasons.
    """
    n = len(flows)
    channel_index: dict[ChannelId, int] = {}
    for flow in flows:
        for channel in flow.channels:
            if channel not in channel_index:
                channel_index[channel] = len(channel_index)
    m = len(channel_index)

    incidence = _np.zeros((m, n), dtype=bool)
    for j, flow in enumerate(flows):
        for channel in flow.channels:
            incidence[channel_index[channel], j] = True

    capacity = _np.empty(m, dtype=float)
    for channel, i in channel_index.items():
        capacity[i] = capacities[channel]
    residual = capacity.copy()
    caps = _np.array([flow.cap for flow in flows], dtype=float)
    finite_cap = _np.isfinite(caps)
    rate = _np.zeros(n, dtype=float)
    unfrozen = _np.ones(n, dtype=bool)

    while unfrozen.any():
        # Per-channel count of active (unfrozen) flows.
        active_counts = incidence @ unfrozen.astype(_np.intp)
        delta = math.inf
        occupied = active_counts > 0
        if occupied.any():
            delta = float((residual[occupied] / active_counts[occupied]).min())
        headroom_mask = finite_cap & unfrozen
        if headroom_mask.any():
            delta = min(delta, float((caps[headroom_mask] - rate[headroom_mask]).min()))

        if delta is math.inf or delta == math.inf:
            ids = [flows[j].flow_id for j in range(n) if unfrozen[j]]
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{sorted(map(repr, ids))}"
            )
        delta = max(delta, 0.0)

        rate[unfrozen] += delta
        residual[occupied] -= delta * active_counts[occupied]

        frozen_now = _np.zeros(n, dtype=bool)
        full = residual <= _CHANNEL_SLACK * capacity
        if full.any():
            frozen_now |= (incidence[full].any(axis=0)) & unfrozen
            if bottlenecks is not None:
                full_ids = {
                    channel for channel, i in channel_index.items() if full[i]
                }
                for j in _np.nonzero(frozen_now)[0]:
                    flow = flows[j]
                    for channel in flow.channels:
                        if channel in full_ids:
                            bottlenecks[flow.flow_id] = channel
                            break
        if headroom_mask.any():
            capped = _np.zeros(n, dtype=bool)
            capped[headroom_mask] = rate[headroom_mask] >= (
                caps[headroom_mask] - _CAP_SLACK * caps[headroom_mask]
            )
            if capped.any():
                if bottlenecks is not None:
                    # Channel attribution wins ties, matching the scalar core.
                    for j in _np.nonzero(capped & ~frozen_now)[0]:
                        bottlenecks[flows[j].flow_id] = None
                rate[capped] = caps[capped]
                frozen_now |= capped
        if not frozen_now.any():
            raise SimulationError("progressive filling made no progress")
        unfrozen &= ~frozen_now

    return {flow.flow_id: float(rate[j]) for j, flow in enumerate(flows)}


def _solve_component(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
) -> dict[Hashable, float]:
    """Level one connected component; dispatches scalar vs vectorized."""
    if not flows:
        return {}
    if len(flows) == 1:
        # Fast path: a lone flow takes min(cap, narrowest channel).
        flow = flows[0]
        best = flow.cap
        for channel in flow.channels:
            capacity = capacities[channel]
            if capacity < best:
                best = capacity
        if best is math.inf or best == math.inf:
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{[repr(flow.flow_id)]}"
            )
        if bottlenecks is not None:
            # Mirror the iterative cores' freeze conditions: blame the
            # first channel with no slack above the allocation; a flow
            # with slack everywhere froze at its own cap.
            bottleneck: ChannelId | None = None
            for channel in flow.channels:
                capacity = capacities[channel]
                if capacity - best <= _CHANNEL_SLACK * capacity:
                    bottleneck = channel
                    break
            bottlenecks[flow.flow_id] = bottleneck
        return {flow.flow_id: best}
    if _np is not None and len(flows) >= _VECTORIZE_THRESHOLD:
        return _solve_component_numpy(flows, capacities, bottlenecks)
    return _solve_component_python(flows, capacities, bottlenecks)


def _connected_components(
    flows: Sequence[FlowSpec],
) -> list[list[FlowSpec]]:
    """Partition flows into maximal sets coupled through shared channels.

    Order is deterministic: components appear in order of their first
    flow, and flows keep their input order within a component.
    """
    parent: dict[int, int] = {i: i for i in range(len(flows))}

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    first_on_channel: dict[ChannelId, int] = {}
    for i, flow in enumerate(flows):
        for channel in flow.channels:
            j = first_on_channel.setdefault(channel, i)
            if j != i:
                parent[find(i)] = find(j)

    grouped: dict[int, list[FlowSpec]] = {}
    for i, flow in enumerate(flows):
        grouped.setdefault(find(i), []).append(flow)
    return list(grouped.values())


def _validate_problem(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
) -> None:
    ids = [f.flow_id for f in flows]
    if len(set(ids)) != len(ids):
        raise SimulationError("duplicate flow ids in fair-share problem")
    for flow in flows:
        for channel in flow.channels:
            if channel not in capacities:
                raise SimulationError(
                    f"flow {flow.flow_id!r} uses unknown channel {channel!r}"
                )
    # Only channels actually carrying flows must have positive capacity:
    # a failed link (capacity 0) may sit in the inventory as long as all
    # traffic has been failed over or rerouted off it first.
    referenced = {channel for flow in flows for channel in flow.channels}
    for channel in referenced:
        if capacities[channel] <= 0:
            raise SimulationError(f"channel {channel!r} capacity must be positive")


def max_min_fair_rates(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
) -> dict[Hashable, float]:
    """Solve the max-min fair allocation (batch).

    Parameters
    ----------
    flows:
        Flow demands.  Flow ids must be unique.
    capacities:
        Capacity (bytes/s) of every channel referenced by a flow.
    bottlenecks:
        Optional dict filled with each flow's freeze reason: the first
        channel of the flow's tuple that was saturated when the flow
        froze, or ``None`` when it froze at its own cap.

    Returns
    -------
    dict mapping flow id to its allocated rate.

    Raises
    ------
    SimulationError
        On duplicate flow ids, unknown channels, or non-positive
        capacities.
    """
    if not flows:
        return {}
    _validate_problem(flows, capacities)

    rates: dict[Hashable, float] = {}
    for component in _connected_components(flows):
        rates.update(_solve_component(component, capacities, bottlenecks))
    # Preserve input order in the result for deterministic iteration.
    return {f.flow_id: rates[f.flow_id] for f in flows}


def max_min_fair_rates_reference(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    bottlenecks: "dict[Hashable, ChannelId | None] | None" = None,
) -> dict[Hashable, float]:
    """The pre-decomposition global solver (perf baseline / oracle).

    Runs progressive filling over the *whole* system at once, exactly
    as the solver did before component decomposition.  Kept for the
    flow-churn perf baseline in ``repro perf`` and as a semantic
    cross-check: it agrees with :func:`max_min_fair_rates` to within
    floating-point accumulation order (not necessarily bitwise).
    ``bottlenecks``, when given, is filled with each flow's freeze
    reason exactly as in :func:`max_min_fair_rates`.
    """
    if not flows:
        return {}
    _validate_problem(flows, capacities)
    return _solve_component_python(flows, capacities, bottlenecks)


# ---------------------------------------------------------------------------
# Incremental solver
# ---------------------------------------------------------------------------


@dataclass
class SolverStats:
    """Work counters of a :class:`FairshareSolver` (for ``Session.stats``)."""

    flows_added: int = 0
    flows_removed: int = 0
    component_solves: int = 0
    flows_releveled: int = 0
    largest_component: int = 0
    capacity_changes: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict rendering for reports and BENCH json."""
        return {
            "flows_added": self.flows_added,
            "flows_removed": self.flows_removed,
            "component_solves": self.component_solves,
            "flows_releveled": self.flows_releveled,
            "largest_component": self.largest_component,
            "capacity_changes": self.capacity_changes,
        }

    def publish(self, metrics: "Any") -> None:
        """Mirror the counters into a metrics registry (no-op if disabled).

        Writes absolute values (the stats are already cumulative), so
        publishing repeatedly is idempotent.
        """
        if not metrics:
            return
        for name, value in self.as_dict().items():
            if name == "largest_component":
                metrics.gauge(f"solver/{name}").set(value)
            else:
                metrics.counter(f"solver/{name}").value = value


class FairshareSolver:
    """Incremental max-min fair solver over a fixed channel inventory.

    The solver owns the constraint state — channel capacities, live
    flows, per-channel membership, and the connected-component
    partition — and keeps the allocation of every live flow cached.
    :meth:`add_flow` merges the components the new flow touches and
    re-levels only that merged component; :meth:`remove_flow` splits
    the departed flow's component back into its maximal pieces and
    re-levels each.  Untouched components keep their cached rates, so
    churn cost scales with coupling, not system size.

    Invariant: after any sequence of add/remove operations,
    :meth:`rates` equals ``max_min_fair_rates(live_flows, capacities)``
    bit-for-bit (both level identical components with the identical
    core).
    """

    def __init__(
        self,
        capacities: Mapping[ChannelId, float] | None = None,
        *,
        track_bottlenecks: bool = False,
    ) -> None:
        self._capacities: dict[ChannelId, float] = {}
        self._flows: dict[Hashable, FlowSpec] = {}
        self._rates: dict[Hashable, float] = {}
        self._members: dict[ChannelId, set[Hashable]] = {}
        self._component_of: dict[Hashable, int] = {}
        self._components: dict[int, list[Hashable]] = {}
        self._component_ids = itertools.count()
        self._track_bottlenecks = bool(track_bottlenecks)
        self._bottlenecks: dict[Hashable, ChannelId | None] = {}
        self.stats = SolverStats()
        if capacities:
            for channel, capacity in capacities.items():
                self.add_channel(channel, capacity)

    # -- channel inventory ---------------------------------------------------

    def add_channel(self, channel: ChannelId, capacity: float) -> None:
        """Register a channel; duplicate ids or bad capacities raise."""
        if channel in self._capacities:
            raise SimulationError(f"channel {channel!r} already exists")
        if capacity <= 0:
            raise SimulationError(f"channel {channel!r} capacity must be positive")
        self._capacities[channel] = capacity

    def set_capacity(
        self, channel: ChannelId, capacity: float
    ) -> dict[Hashable, float]:
        """Change a channel's capacity; re-levels the affected component.

        Every flow crossing the channel belongs (by definition) to one
        connected component; that component is re-leveled with the same
        per-component core as :meth:`add_flow`/:meth:`remove_flow`, so
        the post-change allocation is bit-identical to tearing down and
        re-adding every flow under the new capacity.  Returns the
        re-leveled rates (empty when no flow crosses the channel).

        Capacity 0 models a failed link and is only accepted while the
        channel is empty: progressive filling would freeze crossing
        flows at rate 0, which the flow network treats as starvation —
        fail or reroute them *before* zeroing the capacity.
        """
        if channel not in self._capacities:
            raise SimulationError(f"unknown channel {channel!r}")
        if capacity < 0:
            raise SimulationError(
                f"channel {channel!r} capacity must be non-negative"
            )
        members = self._members.get(channel)
        if capacity == 0 and members:
            raise SimulationError(
                f"channel {channel!r} cannot drop to zero capacity with "
                f"{len(members)} live flows; fail or reroute them first"
            )
        if capacity == self._capacities[channel]:
            return {}
        self._capacities[channel] = capacity
        self.stats.capacity_changes += 1
        if not members:
            return {}
        comp = self._component_of[next(iter(members))]
        return self._relevel(self._components[comp])

    def has_channel(self, channel: ChannelId) -> bool:
        """Whether a channel id is registered."""
        return channel in self._capacities

    def capacities(self) -> dict[ChannelId, float]:
        """``{channel id: capacity}`` snapshot."""
        return dict(self._capacities)

    # -- flow churn ----------------------------------------------------------

    def add_flow(self, spec: FlowSpec) -> dict[Hashable, float]:
        """Admit a flow; re-levels and returns the rates of its component."""
        if spec.flow_id in self._flows:
            raise SimulationError(f"duplicate flow id {spec.flow_id!r}")
        for channel in spec.channels:
            if channel not in self._capacities:
                raise SimulationError(
                    f"flow {spec.flow_id!r} uses unknown channel {channel!r}"
                )
        if not spec.channels and spec.cap is math.inf:
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{[repr(spec.flow_id)]}"
            )

        touched: list[int] = []
        seen: set[int] = set()
        for channel in spec.channels:
            for member in self._members.get(channel, ()):
                comp = self._component_of[member]
                if comp not in seen:
                    seen.add(comp)
                    touched.append(comp)
        touched.sort()

        merged: list[Hashable] = []
        for comp in touched:
            merged.extend(self._components.pop(comp))
        merged.append(spec.flow_id)

        self._flows[spec.flow_id] = spec
        for channel in spec.channels:
            self._members.setdefault(channel, set()).add(spec.flow_id)

        new_comp = next(self._component_ids)
        self._components[new_comp] = merged
        for flow_id in merged:
            self._component_of[flow_id] = new_comp

        self.stats.flows_added += 1
        return self._relevel(merged)

    def remove_flow(self, flow_id: Hashable) -> dict[Hashable, float]:
        """Retire a flow; re-levels and returns the rates of the remainder."""
        spec = self._flows.pop(flow_id, None)
        if spec is None:
            raise SimulationError(f"unknown flow id {flow_id!r}")
        self._rates.pop(flow_id, None)
        self._bottlenecks.pop(flow_id, None)
        for channel in spec.channels:
            group = self._members.get(channel)
            if group is not None:
                group.discard(flow_id)
                if not group:
                    del self._members[channel]

        comp = self._component_of.pop(flow_id)
        remaining = [f for f in self._components.pop(comp) if f != flow_id]
        self.stats.flows_removed += 1
        if not remaining:
            return {}

        updated: dict[Hashable, float] = {}
        for piece in self._split_components(remaining):
            piece_comp = next(self._component_ids)
            self._components[piece_comp] = piece
            for member in piece:
                self._component_of[member] = piece_comp
            updated.update(self._relevel(piece))
        return updated

    def _split_components(
        self, flow_ids: Sequence[Hashable]
    ) -> list[list[Hashable]]:
        """Maximal connected pieces of a former component's remainder."""
        remaining = set(flow_ids)
        pieces: list[list[Hashable]] = []
        unvisited = set(remaining)
        for seed in flow_ids:  # deterministic seed order
            if seed not in unvisited:
                continue
            stack = [seed]
            unvisited.discard(seed)
            piece: set[Hashable] = {seed}
            while stack:
                current = stack.pop()
                for channel in self._flows[current].channels:
                    for neighbour in self._members.get(channel, ()):
                        if neighbour in unvisited:
                            unvisited.discard(neighbour)
                            piece.add(neighbour)
                            stack.append(neighbour)
            # Keep original order within the piece for determinism.
            pieces.append([f for f in flow_ids if f in piece])
        return pieces

    def _relevel(self, flow_ids: Sequence[Hashable]) -> dict[Hashable, float]:
        component = [self._flows[f] for f in flow_ids]
        if self._track_bottlenecks:
            solved = _solve_component(component, self._capacities, self._bottlenecks)
        else:
            solved = _solve_component(component, self._capacities)
        self._rates.update(solved)
        self.stats.component_solves += 1
        self.stats.flows_releveled += len(component)
        if len(component) > self.stats.largest_component:
            self.stats.largest_component = len(component)
        return solved

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._flows

    def rate(self, flow_id: Hashable) -> float:
        """Cached allocation of one live flow."""
        try:
            return self._rates[flow_id]
        except KeyError:
            raise SimulationError(f"unknown flow id {flow_id!r}") from None

    def rates(self) -> dict[Hashable, float]:
        """``{flow id: rate}`` snapshot of every live flow."""
        return dict(self._rates)

    def component_of(self, flow_id: Hashable) -> tuple[Hashable, ...]:
        """The flow ids coupled (transitively) with ``flow_id``."""
        try:
            comp = self._component_of[flow_id]
        except KeyError:
            raise SimulationError(f"unknown flow id {flow_id!r}") from None
        return tuple(self._components[comp])

    def flows(self) -> list[FlowSpec]:
        """Live flow specs, in admission order."""
        return list(self._flows.values())

    def bottleneck(self, flow_id: Hashable) -> ChannelId | None:
        """The recorded freeze reason of one live flow.

        The channel that froze the flow at its last re-level, or
        ``None`` when the flow froze at its own cap.  Requires
        ``track_bottlenecks=True``; raises for unknown flow ids.
        """
        if not self._track_bottlenecks:
            raise SimulationError("solver was built without track_bottlenecks")
        if flow_id not in self._flows:
            raise SimulationError(f"unknown flow id {flow_id!r}")
        return self._bottlenecks.get(flow_id)

    def bottlenecks(self) -> dict[Hashable, ChannelId | None]:
        """``{flow id: freeze reason}`` snapshot (tracking solvers only)."""
        if not self._track_bottlenecks:
            raise SimulationError("solver was built without track_bottlenecks")
        return dict(self._bottlenecks)

    @property
    def tracks_bottlenecks(self) -> bool:
        """Whether this solver records freeze reasons."""
        return self._track_bottlenecks


def allocation_is_feasible(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    rates: Mapping[Hashable, float],
    *,
    rel_tol: float = 1e-6,
) -> bool:
    """Check capacity and cap feasibility of an allocation (for tests)."""
    load: dict[ChannelId, float] = {}
    for flow in flows:
        r = rates[flow.flow_id]
        if r < -rel_tol or r > flow.cap * (1 + rel_tol):
            return False
        for channel in flow.channels:
            load[channel] = load.get(channel, 0.0) + r
    for channel, total in load.items():
        if total > capacities[channel] * (1 + rel_tol):
            return False
    return True

"""Max-min fair rate allocation with per-flow caps ("water-filling").

Infinity Fabric links are modeled as independent directional channels
of fixed capacity.  Several flows may cross a channel simultaneously —
e.g. the eight CPU→GCD STREAM kernels of Fig. 5 each push a flow
through their NUMA domain's port — and the fabric arbitrates them
fairly.  We model that arbitration with the classic *progressive
filling* algorithm:

1. All unfrozen flows grow at the same rate.
2. The first constraint to bind — a channel reaching capacity or a
   flow reaching its own cap (SDMA engine limit, protocol-efficiency
   limit) — freezes the affected flows.
3. Repeat with the survivors until all flows are frozen.

The result is the unique max-min fair allocation.  The function is
pure (no engine state), which lets the test suite verify its
invariants exhaustively with hypothesis:

- no channel is over capacity,
- no flow exceeds its cap,
- every flow is bottlenecked somewhere (work conservation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from ..errors import SimulationError

ChannelId = Hashable


@dataclass(frozen=True)
class FlowSpec:
    """One flow's demand: the channels it crosses and its private cap.

    ``channels`` lists every directional channel the flow occupies
    (one per hop of its route).  ``cap`` bounds the flow's rate
    regardless of how much share the channels would give it —
    ``math.inf`` means unbounded.  A flow with no channels is rate-
    limited only by its cap (e.g. a purely local HBM copy whose cap is
    the achievable memory bandwidth).
    """

    flow_id: Hashable
    channels: tuple[ChannelId, ...]
    cap: float = math.inf

    def __post_init__(self) -> None:
        if self.cap <= 0:
            raise SimulationError(f"flow {self.flow_id!r} cap must be positive")


def max_min_fair_rates(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
) -> dict[Hashable, float]:
    """Solve the max-min fair allocation.

    Parameters
    ----------
    flows:
        Flow demands.  Flow ids must be unique.
    capacities:
        Capacity (bytes/s) of every channel referenced by a flow.

    Returns
    -------
    dict mapping flow id to its allocated rate.

    Raises
    ------
    SimulationError
        On duplicate flow ids, unknown channels, or non-positive
        capacities.
    """
    if not flows:
        return {}
    ids = [f.flow_id for f in flows]
    if len(set(ids)) != len(ids):
        raise SimulationError("duplicate flow ids in fair-share problem")
    for flow in flows:
        for channel in flow.channels:
            if channel not in capacities:
                raise SimulationError(
                    f"flow {flow.flow_id!r} uses unknown channel {channel!r}"
                )
    for channel, capacity in capacities.items():
        if capacity <= 0:
            raise SimulationError(f"channel {channel!r} capacity must be positive")

    rate: dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    unfrozen: set[Hashable] = set(ids)
    flows_by_id = {f.flow_id: f for f in flows}

    # Channel occupancy among unfrozen flows.
    members: dict[ChannelId, set[Hashable]] = {}
    for flow in flows:
        for channel in flow.channels:
            members.setdefault(channel, set()).add(flow.flow_id)
    residual: dict[ChannelId, float] = {
        channel: capacities[channel] for channel in members
    }

    # Progressive filling.  Each iteration freezes at least one flow, so
    # the loop runs at most len(flows) times.
    while unfrozen:
        # Step size: smallest increment at which a constraint binds.
        delta = math.inf
        for channel, group in members.items():
            active = group & unfrozen
            if active:
                delta = min(delta, residual[channel] / len(active))
        for flow_id in unfrozen:
            flow = flows_by_id[flow_id]
            if flow.cap is not math.inf:
                delta = min(delta, flow.cap - rate[flow_id])

        if delta is math.inf:
            # Only uncapped, channel-less flows remain: they are
            # unconstrained, which is a modelling error.
            raise SimulationError(
                "unconstrained flows (no channels and no cap): "
                f"{sorted(map(repr, unfrozen))}"
            )
        delta = max(delta, 0.0)

        for flow_id in unfrozen:
            rate[flow_id] += delta
        for channel, group in members.items():
            active = group & unfrozen
            if active:
                residual[channel] -= delta * len(active)

        # Freeze flows at binding constraints.
        frozen_now: set[Hashable] = set()
        for channel, group in members.items():
            if residual[channel] <= 1e-6 * capacities[channel]:
                frozen_now |= group & unfrozen
        for flow_id in unfrozen:
            flow = flows_by_id[flow_id]
            if flow.cap is not math.inf and rate[flow_id] >= flow.cap - 1e-9 * flow.cap:
                rate[flow_id] = flow.cap
                frozen_now.add(flow_id)
        if not frozen_now:
            raise SimulationError("progressive filling made no progress")
        unfrozen -= frozen_now

    return rate


def allocation_is_feasible(
    flows: Sequence[FlowSpec],
    capacities: Mapping[ChannelId, float],
    rates: Mapping[Hashable, float],
    *,
    rel_tol: float = 1e-6,
) -> bool:
    """Check capacity and cap feasibility of an allocation (for tests)."""
    load: dict[ChannelId, float] = {}
    for flow in flows:
        r = rates[flow.flow_id]
        if r < -rel_tol or r > flow.cap * (1 + rel_tol):
            return False
        for channel in flow.channels:
            load[channel] = load.get(channel, 0.0) + r
    for channel, total in load.items():
        if total > capacities[channel] * (1 + rel_tol):
            return False
    return True

"""Critical-path extraction and bottleneck blame over a span DAG.

Given the causal spans of a run (see :mod:`repro.obs.spans`), this
module answers the paper's question at the run level: *why did this
take as long as it did?*  Two pieces:

- :func:`critical_path` — the longest weighted chain through the span
  DAG.  Walking backwards from the run's end, each instant is
  attributed to the deepest span covering it whose subtree actually
  ends last (the classic "latest-ending child" walk), so the returned
  segments tile the run's wall-clock extent exactly: every second of
  the run belongs to exactly one segment.
- per-segment **blame** — each span carries a ledger of seconds spent
  limited by each channel (or by its own rate cap), recorded by the
  fair-share solver at every re-level.  A segment inherits its span's
  ledger prorated by the fraction of the span it covers, which keeps
  the decomposition additive: summing segment blame reproduces the
  critical path's length (minus unattributed span-internal time such
  as launch/sync overheads, reported separately).

Everything is deterministic: children are ordered by ``(end, start,
id)``, spans come from a deterministic simulation, and the functions
are pure — so ``jobs=1`` and ``jobs=N`` sweeps produce identical
critical paths once their span sets are merged in point order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from .spans import span_dicts

__all__ = [
    "PathSegment",
    "CriticalPath",
    "critical_path",
    "blame_ranking",
    "explain_spans",
    "span_subtree",
]

#: Segments shorter than this (seconds) are dropped from the path —
#: they are float-rounding shards, not real simulated intervals.
_MIN_SEGMENT = 1e-15

#: Blame key for path time no span's ledger covers (launch/step
#: overheads, fault service latencies, idle gaps between points).
UNATTRIBUTED = "(unattributed)"


def _end_of(span: Mapping[str, Any]) -> float:
    """A span's end, treating unfinished spans as zero-length."""
    end = span.get("end")
    return float(span["start"]) if end is None else float(end)


@dataclass(frozen=True)
class PathSegment:
    """One critical-path interval, owned by exactly one span."""

    span_id: int | None  #: ``None`` for idle gaps between root spans
    category: str
    name: str
    start: float
    end: float
    blame: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Segment extent in seconds."""
        return self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        """JSON-able rendering (for reports)."""
        return {
            "span": self.span_id,
            "cat": self.category,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "blame": dict(self.blame),
        }


class CriticalPath:
    """The longest weighted chain through a run's span DAG."""

    def __init__(self, segments: Sequence[PathSegment], t0: float, t1: float) -> None:
        self.segments = list(segments)
        self.t0 = t0
        self.t1 = t1

    @property
    def length(self) -> float:
        """Wall-clock extent covered by the path (seconds)."""
        return self.t1 - self.t0

    def blame(self) -> dict[str, float]:
        """Aggregate seconds per blame key along the whole path.

        Includes :data:`UNATTRIBUTED` for path time no flow interval
        covered (overheads, latencies, inter-point gaps); the values
        sum to :attr:`length` up to float rounding.
        """
        totals: dict[str, float] = {}
        for segment in self.segments:
            covered = 0.0
            for key, seconds in segment.blame.items():
                totals[key] = totals.get(key, 0.0) + seconds
                covered += seconds
            slack = segment.duration - covered
            if slack > 0:
                totals[UNATTRIBUTED] = totals.get(UNATTRIBUTED, 0.0) + slack
        return totals

    def ranked_blame(self) -> list[tuple[str, float]]:
        """Channel/cap blame sorted most-culpable first (deterministic).

        :data:`UNATTRIBUTED` time is excluded — it is span-internal
        overhead, not a contended resource, so ranking it against
        channels would bury the actual bottleneck.  Use
        :meth:`unattributed` (or :meth:`blame`) to see it.
        """
        return sorted(
            (
                (key, seconds)
                for key, seconds in self.blame().items()
                if key != UNATTRIBUTED
            ),
            key=lambda kv: (-kv[1], kv[0]),
        )

    def unattributed(self) -> float:
        """Path seconds not covered by any flow's blame ledger."""
        return self.blame().get(UNATTRIBUTED, 0.0)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able rendering (for reports)."""
        return {
            "t0": self.t0,
            "t1": self.t1,
            "length": self.length,
            "segments": [segment.as_dict() for segment in self.segments],
            "blame": self.blame(),
        }

    def format(self, *, top: int = 10) -> str:
        """Human-readable blame table plus path summary."""
        lines = [
            f"critical path: {self.length * 1e6:.1f} us "
            f"across {len(self.segments)} segment(s)"
        ]
        ranked = self.ranked_blame()
        shown = ranked[:top]
        if shown:
            lines.append("top blame (time limited by each channel/cap):")
            for key, seconds in shown:
                share = seconds / self.length if self.length > 0 else 0.0
                lines.append(
                    f"  {key:<44s} {seconds * 1e6:>10.1f} us  {share * 100:>5.1f}%"
                )
            if len(ranked) > top:
                lines.append(f"  … and {len(ranked) - top} more")
        slack = self.unattributed()
        if slack > 0:
            share = slack / self.length if self.length > 0 else 0.0
            label = "unattributed (overheads/latency/gaps)"
            lines.append(
                f"  {label:<44s} {slack * 1e6:>10.1f} us  {share * 100:>5.1f}%"
            )
        return "\n".join(lines)


def _prorated_blame(
    span: Mapping[str, Any], seg_start: float, seg_end: float
) -> dict[str, float]:
    """A span's blame ledger scaled to one segment's share of the span."""
    blame = span.get("blame") or {}
    if not blame:
        return {}
    start = float(span["start"])
    end = _end_of(span)
    span_dur = end - start
    seg_dur = seg_end - seg_start
    if span_dur <= 0 or seg_dur <= 0:
        return {}
    fraction = seg_dur / span_dur
    # Cap the prorated total at the segment duration so blame never
    # exceeds the time it explains (ledgers of overlapping flows can
    # sum past wall-clock within one span).
    total = sum(blame.values())
    scale = fraction
    if total * fraction > seg_dur and total > 0:
        scale = seg_dur / total
    return {key: seconds * scale for key, seconds in blame.items()}


def critical_path(
    spans: "Iterable[Mapping[str, Any]] | Any",
) -> CriticalPath:
    """Extract the critical path over a span set.

    Accepts a :class:`~repro.obs.spans.SpanRecorder`, span objects, or
    span dicts.  Returns an empty path for an empty set.
    """
    records = span_dicts(spans)
    if not records:
        return CriticalPath([], 0.0, 0.0)

    by_id: dict[int, dict[str, Any]] = {}
    for span in records:
        by_id[int(span["id"])] = span
    children: dict[int | None, list[dict[str, Any]]] = {}
    for span in records:
        parent = span.get("parent")
        key = int(parent) if parent is not None and int(parent) in by_id else None
        children.setdefault(key, []).append(span)

    t0 = min(float(span["start"]) for span in records)
    t1 = max(_end_of(span) for span in records)
    virtual_root: dict[str, Any] = {
        "id": None,
        "cat": "run",
        "name": "<run>",
        "start": t0,
        "end": t1,
        "blame": {},
    }

    def kid_order(span: Mapping[str, Any]) -> tuple[float, float, int]:
        return (_end_of(span), float(span["start"]), int(span["id"]))

    segments: list[PathSegment] = []

    def emit(span: Mapping[str, Any], seg_start: float, seg_end: float) -> None:
        if seg_end - seg_start <= _MIN_SEGMENT:
            return
        segments.append(
            PathSegment(
                span["id"],
                str(span.get("cat", "")),
                str(span.get("name", "")),
                seg_start,
                seg_end,
                _prorated_blame(span, seg_start, seg_end),
            )
        )

    def walk(span: Mapping[str, Any], limit: float) -> None:
        """Attribute ``(span.start, limit]`` to this span's subtree.

        Emits segments in reverse time order; the caller reverses once
        at the end.
        """
        span_start = float(span["start"])
        cursor = min(_end_of(span), limit)
        kids = sorted(children.get(span["id"], ()), key=kid_order)
        while kids and cursor > span_start:
            child = kids.pop()  # latest-ending remaining child
            child_start = float(child["start"])
            child_end = min(_end_of(child), cursor)
            if child_end <= span_start or child_start >= cursor:
                continue  # fully outside what is left to explain
            if child_end < cursor:
                emit(span, child_end, cursor)  # parent self-time gap
            walk(child, child_end)
            cursor = max(min(cursor, child_start), span_start)
        if cursor > span_start:
            emit(span, span_start, cursor)

    walk(virtual_root, t1)
    segments.reverse()
    return CriticalPath(segments, t0, t1)


def span_subtree(
    spans: "Iterable[Mapping[str, Any]] | Any", span_id: int
) -> list[dict[str, Any]]:
    """The span with ``span_id`` plus all its descendants."""
    records = span_dicts(spans)
    children: dict[int, list[dict[str, Any]]] = {}
    by_id: dict[int, dict[str, Any]] = {}
    for span in records:
        by_id[int(span["id"])] = span
        parent = span.get("parent")
        if parent is not None:
            children.setdefault(int(parent), []).append(span)
    root = by_id.get(int(span_id))
    if root is None:
        raise KeyError(f"no span with id {span_id}")
    subtree = [root]
    stack = [int(span_id)]
    while stack:
        for child in children.get(stack.pop(), ()):
            subtree.append(child)
            stack.append(int(child["id"]))
    return subtree


def blame_ranking(
    spans: "Iterable[Mapping[str, Any]] | Any",
) -> list[tuple[str, float]]:
    """Critical-path blame, ranked most-culpable first."""
    return critical_path(spans).ranked_blame()


def explain_spans(
    spans: "Iterable[Mapping[str, Any]] | Any",
    *,
    span_id: int | None = None,
    top: int = 10,
) -> str:
    """Human-readable "why was this slow" breakdown.

    With ``span_id``, restricts the analysis to that span's subtree
    (``repro explain <artifact> --span <id>``).
    """
    records = span_dicts(spans)
    if span_id is not None:
        records = span_subtree(records, span_id)
        header = next(s for s in records if int(s["id"]) == int(span_id))
        path = critical_path(records)
        title = (
            f"span {span_id} [{header.get('cat', '?')}] "
            f"{header.get('name', '')!r}: "
            f"{len(records)} span(s) in subtree"
        )
        return title + "\n" + path.format(top=top)
    if not records:
        return "no spans recorded (run with spans enabled)"
    return critical_path(records).format(top=top)

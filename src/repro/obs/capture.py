"""Ambient observation: instrument sessions you did not create.

The figure drivers and benchmark suites build their own
:class:`~repro.session.Session` /
:class:`~repro.hardware.node.HardwareNode` objects internally — their
signatures deliberately do not leak simulator plumbing.  To observe
one of those runs (``repro trace fig06``, ``repro run --metrics``)
without threading a registry through every measurement function, the
CLI installs an *ambient* :class:`ObservationContext`::

    with obs.capture() as ctx:
        figures.run("fig04")
    print(ctx.metrics.describe())
    records = ctx.tracer.records()

While the context is active, every :class:`HardwareNode` constructed
without explicit ``metrics=``/``trace=`` arguments adopts the
context's shared registry and tracer, so metrics and timeline records
from all sessions built inside the ``with`` block accumulate in one
place.  Explicit arguments always win — a caller that asked for its
own registry keeps it.

The context is a :class:`contextvars.ContextVar` — isolated per
thread (and asyncio task), so every concurrent ``repro serve`` session
observes only its own simulations; single-threaded CLI runs behave
exactly as a module global would.  Pool workers (separate processes)
never see it, which is why
:func:`repro.runner.points.execute_point_observed` re-creates a
context inside the worker instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from ..sim.trace import Tracer
from .metrics import DEFAULT_SAMPLE_CAPACITY, MetricsRegistry
from .spans import SpanRecorder

_ACTIVE: "ContextVar[ObservationContext | None]" = ContextVar(
    "repro_ambient_observation", default=None
)


class ObservationContext:
    """A shared registry + tracer + span recorder ambient sessions adopt."""

    def __init__(
        self,
        *,
        metrics: bool = True,
        trace: bool = True,
        trace_capacity: int | None = None,
        metrics_capacity: int | None = None,
        spans: bool = False,
    ) -> None:
        self.metrics = MetricsRegistry(
            enabled=metrics,
            sample_capacity=(
                DEFAULT_SAMPLE_CAPACITY if metrics_capacity is None else metrics_capacity
            ),
        )
        self.tracer = Tracer(enabled=trace, capacity=trace_capacity)
        self.spans = SpanRecorder(enabled=spans)
        #: How many HardwareNodes adopted this context.
        self.adoptions = 0


def active() -> ObservationContext | None:
    """The currently-installed context, or ``None``."""
    return _ACTIVE.get()


@contextmanager
def capture(
    *,
    metrics: bool = True,
    trace: bool = True,
    trace_capacity: int | None = None,
    metrics_capacity: int | None = None,
    spans: bool = False,
) -> Iterator[ObservationContext]:
    """Install an ambient observation context for the ``with`` body.

    Nested captures stack: the innermost context wins, and the outer
    one is restored on exit (also when the body raises — the ``finally``
    below is what keeps pool workers from leaking a registry into the
    next point).
    """
    context = ObservationContext(
        metrics=metrics,
        trace=trace,
        trace_capacity=trace_capacity,
        metrics_capacity=metrics_capacity,
        spans=spans,
    )
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)

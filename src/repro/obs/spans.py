"""Causal span records for simulated operations.

A *span* is one logical operation in simulated time — a memcpy, a
kernel's direct-access window, a page-fault service, an MPI message,
an RCCL step — with an explicit parent/child edge to the operation
that caused it.  Spans carry the attribution the fair-share solver
already computes: while a flow bound to a span is active, every
re-level interval records the flow's rate and the channel (or cap)
that froze it, so after a run each span knows *where* its time went.

Design constraints, mirroring :mod:`repro.obs.metrics`:

- **Falsy when disabled.**  A disabled :class:`SpanRecorder` is falsy
  and ``begin`` returns ``None``, so instrumentation sites guard with
  ``if spans:`` and pay only a truthiness check when observability is
  off (the ``repro perf`` overhead guard pins this at <= 5%).
- **Clock-free.**  Callers pass simulated timestamps (``engine.now``)
  explicitly; the recorder never reads a clock, which keeps replays
  and pool workers deterministic.
- **Explicit causality.**  Parents are threaded by hand (the
  ``parent=`` argument), never inferred from an ambient "current
  span": discrete-event process generators interleave arbitrarily
  across yields, so lexical nesting would lie about causality.
- **Picklable.**  :meth:`Span.as_dict` / :func:`merge_point_spans`
  round-trip spans as plain JSON-able dicts so pool workers can ship
  them back to the parent process.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_INTERVAL_CAPACITY",
    "POINT_GAP_SECONDS",
    "NULL_SPANS",
    "Span",
    "SpanRecorder",
    "merge_point_spans",
    "resolve_spans",
    "span_dicts",
]

#: Default bound on per-span interval samples (blame totals are exact
#: regardless; only the sampled interval ring is bounded).
DEFAULT_INTERVAL_CAPACITY = 512

#: Idle gap inserted between points when merging per-point span sets
#: onto one artifact-level timeline (matches the trace exporter).
POINT_GAP_SECONDS = 1e-5


class Span:
    """One operation's record: identity, extent, causality, and blame.

    ``blame`` maps a *blame key* — a flattened channel name such as
    ``"link/gcd0-gcd1:quad/fwd"``, or ``"cap:<label>"`` for flows
    frozen at their own cap — to the seconds this span's flows spent
    limited by it.  ``intervals`` is a bounded sample of the raw
    ``(start, dt, rate, key)`` records behind those totals; overflow
    is counted in ``dropped``, never silently discarded.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "category",
        "name",
        "start",
        "end",
        "blame",
        "intervals",
        "dropped",
        "meta",
        "_interval_capacity",
    )

    def __init__(
        self,
        span_id: int,
        category: str,
        name: str,
        start: float,
        *,
        parent_id: int | None = None,
        interval_capacity: int = DEFAULT_INTERVAL_CAPACITY,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.category = category
        self.name = name
        self.start = start
        self.end: float | None = None
        self.blame: dict[str, float] = {}
        self.intervals: list[tuple[float, float, float, str]] = []
        self.dropped = 0
        self.meta = meta or {}
        self._interval_capacity = interval_capacity

    def account(self, start: float, dt: float, rate: float, key: str) -> None:
        """Charge ``dt`` seconds at ``rate`` B/s to blame bucket ``key``."""
        blame = self.blame
        blame[key] = blame.get(key, 0.0) + dt
        if len(self.intervals) < self._interval_capacity:
            self.intervals.append((start, dt, rate, key))
        else:
            self.dropped += 1

    @property
    def duration(self) -> float:
        """Span extent in seconds (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        """Plain JSON-able rendering (see :func:`Span.from_dict`)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "cat": self.category,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "blame": dict(self.blame),
            "intervals": [list(record) for record in self.intervals],
            "dropped": self.dropped,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a span from :meth:`as_dict` output."""
        span = cls(
            int(data["id"]),
            str(data["cat"]),
            str(data["name"]),
            float(data["start"]),
            parent_id=(None if data.get("parent") is None else int(data["parent"])),
            meta=dict(data.get("meta") or {}),
        )
        end = data.get("end")
        span.end = None if end is None else float(end)
        span.blame = {str(k): float(v) for k, v in (data.get("blame") or {}).items()}
        span.intervals = [
            (float(r[0]), float(r[1]), float(r[2]), str(r[3]))
            for r in data.get("intervals") or ()
        ]
        span.dropped = int(data.get("dropped", 0))
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(id={self.span_id}, cat={self.category!r}, "
            f"name={self.name!r}, start={self.start}, end={self.end})"
        )


class SpanRecorder:
    """Collects spans for one node/run; falsy and inert when disabled."""

    def __init__(
        self,
        enabled: bool = True,
        *,
        interval_capacity: int = DEFAULT_INTERVAL_CAPACITY,
    ) -> None:
        self.enabled = bool(enabled)
        self.interval_capacity = int(interval_capacity)
        self._spans: list[Span] = []
        self._next_id = 0

    def __bool__(self) -> bool:
        return self.enabled

    def __len__(self) -> int:
        return len(self._spans)

    def begin(
        self,
        category: str,
        name: str,
        *,
        start: float,
        parent: Span | None = None,
        **meta: Any,
    ) -> Span | None:
        """Open a span; returns ``None`` when recording is disabled."""
        if not self.enabled:
            return None
        span = Span(
            self._next_id,
            category,
            name,
            start,
            parent_id=None if parent is None else parent.span_id,
            interval_capacity=self.interval_capacity,
            meta=meta if meta else None,
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    def finish(self, span: Span | None, end: float) -> None:
        """Close a span (no-op for the ``None`` a disabled begin returned)."""
        if span is not None:
            span.end = end

    def spans(self) -> list[Span]:
        """All spans begun so far, in creation (= id) order."""
        return list(self._spans)

    def as_dicts(self) -> list[dict[str, Any]]:
        """JSON-able rendering of every span, in id order."""
        return [span.as_dict() for span in self._spans]


#: Shared inert recorder for "spans disabled" paths.
NULL_SPANS = SpanRecorder(enabled=False)


def resolve_spans(spans: "SpanRecorder | bool | None") -> SpanRecorder:
    """Normalize a spans argument to a recorder instance.

    ``None``/``False`` mean disabled (the shared :data:`NULL_SPANS`),
    ``True`` means a fresh enabled recorder, and an existing recorder
    passes through (e.g. to share one recorder across nodes).
    """
    if spans is None or spans is False:
        return NULL_SPANS
    if spans is True:
        return SpanRecorder(enabled=True)
    return spans


def span_dicts(spans: "SpanRecorder | Iterable[Span | Mapping[str, Any]]") -> list[dict[str, Any]]:
    """Normalize spans from any carrier to a list of plain dicts."""
    if isinstance(spans, SpanRecorder):
        return spans.as_dicts()
    out: list[dict[str, Any]] = []
    for span in spans:
        if isinstance(span, Span):
            out.append(span.as_dict())
        else:
            out.append(dict(span))
    return out


def merge_point_spans(
    per_point: Sequence[tuple[str, Sequence[Mapping[str, Any]]]],
    *,
    gap: float = POINT_GAP_SECONDS,
) -> list[dict[str, Any]]:
    """Merge per-point span sets onto one artifact-level timeline.

    Each entry is ``(point label, spans-as-dicts)`` from one sweep
    point.  Points are laid end-to-end in input order with ``gap``
    seconds of idle between them (the same convention as the merged
    Chrome trace), each under a fresh synthetic ``point`` root span,
    and span ids are remapped to stay unique.  The layout depends only
    on the input order, so merging worker results in point order makes
    the merged set identical for ``jobs=1`` and ``jobs=N``.
    """
    merged: list[dict[str, Any]] = []
    next_id = 0
    cursor = 0.0
    for label, raw_spans in per_point:
        spans = [dict(span) for span in raw_spans]
        if spans:
            t0 = min(float(span["start"]) for span in spans)
            t1 = max(
                float(span["end"]) if span.get("end") is not None else float(span["start"])
                for span in spans
            )
        else:
            t0 = t1 = 0.0
        shift = cursor - t0

        root_id = next_id
        next_id += 1
        id_map = {int(span["id"]): next_id + i for i, span in enumerate(spans)}
        next_id += len(spans)

        merged.append(
            {
                "id": root_id,
                "parent": None,
                "cat": "point",
                "name": label,
                "start": t0 + shift,
                "end": t1 + shift,
                "blame": {},
                "intervals": [],
                "dropped": 0,
                "meta": {"point": label, "spans": len(spans)},
            }
        )
        for span in spans:
            parent = span.get("parent")
            span["id"] = id_map[int(span["id"])]
            span["parent"] = (
                id_map.get(int(parent), root_id) if parent is not None else root_id
            )
            span["start"] = float(span["start"]) + shift
            span["end"] = (
                None if span.get("end") is None else float(span["end"]) + shift
            )
            span["intervals"] = [
                [float(r[0]) + shift, float(r[1]), float(r[2]), str(r[3])]
                for r in span.get("intervals") or ()
            ]
            merged.append(span)

        cursor = (t1 + shift) + gap
    return merged

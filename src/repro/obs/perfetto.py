"""Chrome-trace (Perfetto) JSON export of simulator timelines.

The :class:`~repro.sim.trace.Tracer` already records every transfer,
kernel, fault and collective step; this module lays those records out
in the `Chrome Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
so they load directly in `Perfetto <https://ui.perfetto.dev>`_ or
``chrome://tracing``:

- every trace record becomes a complete (``"ph": "X"``) slice on a
  track derived from the record — kernels and faults land on their
  GCD's track, memcpys on a per-kind track, collectives on theirs;
- every flow-network channel with metric samples becomes a counter
  (``"ph": "C"``) track showing allocated GB/s over simulated time —
  the per-link utilization picture the paper's analysis rests on;
- causal spans (see :mod:`repro.obs.spans`) become slices on their own
  process row, one track per span category, with parent → child edges
  rendered as flow events (``"ph": "s"``/``"f"`` pairs) — Perfetto
  draws these as causality arrows between slices;
- ``otherData`` carries provenance (calibration/topology fingerprints,
  package version, git SHA), so a trace file is self-describing.

Times are simulated seconds scaled to microseconds (the format's
unit).  :func:`validate_chrome_trace` is the schema check CI runs on
exported traces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..sim.trace import TraceRecord
from .metrics import MetricsRegistry

#: Chrome trace timestamps are microseconds; the simulator uses seconds.
_US = 1e6

#: pid of the slice tracks; counter and span tracks get their own
#: process rows.
_SIM_PID = 1
_COUNTER_PID = 2
_SPAN_PID = 3


def _track_for(record: TraceRecord) -> str:
    """Display track of one record (GCD if known, else its category)."""
    detail = record.detail
    device = detail.get("device", detail.get("gcd"))
    if device is not None:
        return f"gcd{device}/{record.category}"
    if record.category == "memcpy":
        # Split peer copies from host copies so lanes stay readable.
        kind = record.label.split(":", 1)[0]
        return f"memcpy/{kind}"
    return record.category


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def build_provenance(
    *,
    calibration: Any | None = None,
    topology: Any | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Self-description block for ``otherData``.

    Accepts live :class:`~repro.core.calibration.CalibrationProfile` /
    :class:`~repro.topology.node.NodeTopology` objects and records
    their content fingerprints, plus the package version and git SHA.
    """
    from .. import __version__
    from ..perf.core import _git_sha

    provenance: dict[str, Any] = {
        "generator": "repro.obs.perfetto",
        "version": __version__,
        "git_sha": _git_sha(),
    }
    if calibration is not None:
        provenance["calibration_fingerprint"] = calibration.fingerprint()
    if topology is not None:
        provenance["topology_fingerprint"] = topology.fingerprint()
        provenance["topology"] = getattr(topology, "name", str(topology))
    if extra:
        provenance.update({k: _json_safe(v) for k, v in extra.items()})
    return provenance


def build_chrome_trace(
    records: Iterable[TraceRecord],
    *,
    metrics: MetricsRegistry | None = None,
    spans: Iterable[Mapping[str, Any]] | None = None,
    provenance: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the Chrome-trace payload (a JSON-able dict)."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _SIM_PID,
            "args": {"name": "simulated timeline"},
        }
    ]
    tracks: dict[str, int] = {}
    for record in sorted(records, key=lambda r: (r.start, r.end)):
        track = _track_for(record)
        tid = tracks.get(track)
        if tid is None:
            tid = tracks[track] = len(tracks) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _SIM_PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        events.append(
            {
                "name": record.label,
                "cat": record.category,
                "ph": "X",
                "pid": _SIM_PID,
                "tid": tid,
                "ts": record.start * _US,
                "dur": record.duration * _US,
                "args": {k: _json_safe(v) for k, v in record.detail.items()},
            }
        )

    if metrics is not None:
        counter_events = _counter_events(metrics)
        if counter_events:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": _COUNTER_PID,
                    "args": {"name": "channel rates"},
                }
            )
            events.extend(counter_events)

    if spans is not None:
        span_events = _span_events(spans)
        if span_events:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": _SPAN_PID,
                    "args": {"name": "causal spans"},
                }
            )
            events.extend(span_events)

    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    other: dict[str, Any] = dict(provenance) if provenance else {}
    if metrics is not None and metrics.enabled:
        other["metrics"] = metrics.snapshot()
    if other:
        payload["otherData"] = other
    return payload


def _counter_events(metrics: MetricsRegistry) -> list[dict[str, Any]]:
    """Counter tracks: one per busy channel (allocated GB/s over time).

    Each usage sample marks the start of a constant-rate interval, so
    emitting the value at the sample time draws the correct step
    function in Perfetto's counter rendering.
    """
    events: list[dict[str, Any]] = []
    for name, usage in sorted(metrics.channels().items()):
        if not usage.samples:
            continue
        counter = f"{name} GB/s"
        last_rate: float | None = None
        for start, rate in usage.samples:
            if rate == last_rate:
                continue
            last_rate = rate
            events.append(
                {
                    "name": counter,
                    "ph": "C",
                    "pid": _COUNTER_PID,
                    "ts": start * _US,
                    "args": {"rate": rate / 1e9},
                }
            )
    for name, series in sorted(metrics.series().items()):
        last_value: float | None = None
        for t, value in series.samples:
            if value == last_value:
                continue
            last_value = value
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": _COUNTER_PID,
                    "ts": t * _US,
                    "args": {"value": value},
                }
            )
    return events


def _span_events(spans: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Span slices plus parent → child causality flow arrows.

    One track per span category; each parent/child edge becomes an
    ``"s"``/``"f"`` flow-event pair keyed by the child span's id, so
    Perfetto draws an arrow from the parent slice to the child slice.
    """
    records = sorted(
        (dict(span) for span in spans),
        key=lambda s: (float(s["start"]), int(s["id"])),
    )
    by_id = {int(span["id"]): span for span in records}
    events: list[dict[str, Any]] = []
    tracks: dict[str, int] = {}

    def track_of(span: Mapping[str, Any]) -> int:
        category = str(span.get("cat", "span"))
        tid = tracks.get(category)
        if tid is None:
            tid = tracks[category] = len(tracks) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _SPAN_PID,
                    "tid": tid,
                    "args": {"name": f"spans/{category}"},
                }
            )
        return tid

    for span in records:
        tid = track_of(span)
        start = float(span["start"])
        end = span.get("end")
        duration = (float(end) - start) if end is not None else 0.0
        args: dict[str, Any] = {"span_id": int(span["id"])}
        blame = span.get("blame") or {}
        if blame:
            args["blame_us"] = {
                key: seconds * _US for key, seconds in blame.items()
            }
        if span.get("dropped"):
            args["dropped_intervals"] = span["dropped"]
        for key, value in (span.get("meta") or {}).items():
            args[key] = _json_safe(value)
        events.append(
            {
                "name": str(span.get("name", "")),
                "cat": str(span.get("cat", "span")),
                "ph": "X",
                "pid": _SPAN_PID,
                "tid": tid,
                "ts": start * _US,
                "dur": duration * _US,
                "args": args,
            }
        )

    for span in records:
        parent_id = span.get("parent")
        if parent_id is None:
            continue
        parent = by_id.get(int(parent_id))
        if parent is None:
            continue  # cross-point edge pruned by a merge
        child_start = float(span["start"])
        flow = {
            "name": "causal",
            "cat": str(span.get("cat", "span")),
            "id": int(span["id"]),
            "pid": _SPAN_PID,
            "ts": child_start * _US,
        }
        events.append({**flow, "ph": "s", "tid": track_of(parent)})
        events.append({**flow, "ph": "f", "bp": "e", "tid": track_of(span)})
    return events


def validate_chrome_trace(payload: Any) -> list[str]:
    """Schema-check a trace payload; returns a list of problems.

    An empty list means the payload is loadable by Perfetto /
    ``chrome://tracing``.  This is the check CI runs on the exported
    artifact trace.
    """
    problems: list[str] = []
    if not isinstance(payload, Mapping):
        return ["top level is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    counter_clock: dict[tuple[int, str], float] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "C", "M", "s", "f"):
            problems.append(f"{where}: unsupported phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if phase == "M":
            if event["name"] not in ("process_name", "thread_name"):
                problems.append(f"{where}: unknown metadata {event['name']!r}")
            args = event.get("args")
            if not isinstance(args, Mapping) or not isinstance(
                args.get("name"), str
            ):
                problems.append(f"{where}: metadata args.name missing")
            continue
        ts = event.get("ts")
        ts_ok = isinstance(ts, (int, float)) and ts >= 0
        if not ts_ok:
            problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: missing integer tid")
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, Mapping) or not args:
                problems.append(f"{where}: counter without args")
            elif not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: non-numeric counter value")
            # Counters are a per-(pid, name) time series; Perfetto
            # requires monotonically non-decreasing timestamps within
            # each series to render the step function.
            if (
                ts_ok
                and isinstance(event.get("name"), str)
                and isinstance(event.get("pid"), int)
            ):
                key = (event["pid"], event["name"])
                last = counter_clock.get(key)
                if last is not None and ts < last:
                    problems.append(
                        f"{where}: counter {event['name']!r} timestamp "
                        f"{ts!r} goes backwards (previous {last!r})"
                    )
                else:
                    counter_clock[key] = float(ts)
        else:  # "s" / "f" — flow events need a binding track and an id
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: missing integer tid")
            if event.get("id") is None:
                problems.append(f"{where}: flow event without id")
    return problems


def write_chrome_trace(path: str | Path, payload: Mapping[str, Any]) -> Path:
    """Serialize a trace payload to ``path`` (validated first)."""
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            "refusing to write an invalid trace: " + "; ".join(problems[:5])
        )
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=False))
    return path

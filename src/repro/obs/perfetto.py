"""Chrome-trace (Perfetto) JSON export of simulator timelines.

The :class:`~repro.sim.trace.Tracer` already records every transfer,
kernel, fault and collective step; this module lays those records out
in the `Chrome Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
so they load directly in `Perfetto <https://ui.perfetto.dev>`_ or
``chrome://tracing``:

- every trace record becomes a complete (``"ph": "X"``) slice on a
  track derived from the record — kernels and faults land on their
  GCD's track, memcpys on a per-kind track, collectives on theirs;
- every flow-network channel with metric samples becomes a counter
  (``"ph": "C"``) track showing allocated GB/s over simulated time —
  the per-link utilization picture the paper's analysis rests on;
- ``otherData`` carries provenance (calibration/topology fingerprints,
  package version, git SHA), so a trace file is self-describing.

Times are simulated seconds scaled to microseconds (the format's
unit).  :func:`validate_chrome_trace` is the schema check CI runs on
exported traces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..sim.trace import TraceRecord
from .metrics import MetricsRegistry

#: Chrome trace timestamps are microseconds; the simulator uses seconds.
_US = 1e6

#: pid of the slice tracks; counter tracks get their own process row.
_SIM_PID = 1
_COUNTER_PID = 2


def _track_for(record: TraceRecord) -> str:
    """Display track of one record (GCD if known, else its category)."""
    detail = record.detail
    device = detail.get("device", detail.get("gcd"))
    if device is not None:
        return f"gcd{device}/{record.category}"
    if record.category == "memcpy":
        # Split peer copies from host copies so lanes stay readable.
        kind = record.label.split(":", 1)[0]
        return f"memcpy/{kind}"
    return record.category


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def build_provenance(
    *,
    calibration: Any | None = None,
    topology: Any | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Self-description block for ``otherData``.

    Accepts live :class:`~repro.core.calibration.CalibrationProfile` /
    :class:`~repro.topology.node.NodeTopology` objects and records
    their content fingerprints, plus the package version and git SHA.
    """
    from .. import __version__
    from ..perf.core import _git_sha

    provenance: dict[str, Any] = {
        "generator": "repro.obs.perfetto",
        "version": __version__,
        "git_sha": _git_sha(),
    }
    if calibration is not None:
        provenance["calibration_fingerprint"] = calibration.fingerprint()
    if topology is not None:
        provenance["topology_fingerprint"] = topology.fingerprint()
        provenance["topology"] = getattr(topology, "name", str(topology))
    if extra:
        provenance.update({k: _json_safe(v) for k, v in extra.items()})
    return provenance


def build_chrome_trace(
    records: Iterable[TraceRecord],
    *,
    metrics: MetricsRegistry | None = None,
    provenance: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the Chrome-trace payload (a JSON-able dict)."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _SIM_PID,
            "args": {"name": "simulated timeline"},
        }
    ]
    tracks: dict[str, int] = {}
    for record in sorted(records, key=lambda r: (r.start, r.end)):
        track = _track_for(record)
        tid = tracks.get(track)
        if tid is None:
            tid = tracks[track] = len(tracks) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _SIM_PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        events.append(
            {
                "name": record.label,
                "cat": record.category,
                "ph": "X",
                "pid": _SIM_PID,
                "tid": tid,
                "ts": record.start * _US,
                "dur": record.duration * _US,
                "args": {k: _json_safe(v) for k, v in record.detail.items()},
            }
        )

    if metrics is not None:
        counter_events = _counter_events(metrics)
        if counter_events:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": _COUNTER_PID,
                    "args": {"name": "channel rates"},
                }
            )
            events.extend(counter_events)

    payload: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    other: dict[str, Any] = dict(provenance) if provenance else {}
    if metrics is not None and metrics.enabled:
        other["metrics"] = metrics.snapshot()
    if other:
        payload["otherData"] = other
    return payload


def _counter_events(metrics: MetricsRegistry) -> list[dict[str, Any]]:
    """Counter tracks: one per busy channel (allocated GB/s over time).

    Each usage sample marks the start of a constant-rate interval, so
    emitting the value at the sample time draws the correct step
    function in Perfetto's counter rendering.
    """
    events: list[dict[str, Any]] = []
    for name, usage in sorted(metrics.channels().items()):
        if not usage.samples:
            continue
        counter = f"{name} GB/s"
        last_rate: float | None = None
        for start, rate in usage.samples:
            if rate == last_rate:
                continue
            last_rate = rate
            events.append(
                {
                    "name": counter,
                    "ph": "C",
                    "pid": _COUNTER_PID,
                    "ts": start * _US,
                    "args": {"rate": rate / 1e9},
                }
            )
    for name, series in sorted(metrics.series().items()):
        last_value: float | None = None
        for t, value in series.samples:
            if value == last_value:
                continue
            last_value = value
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": _COUNTER_PID,
                    "ts": t * _US,
                    "args": {"value": value},
                }
            )
    return events


def validate_chrome_trace(payload: Any) -> list[str]:
    """Schema-check a trace payload; returns a list of problems.

    An empty list means the payload is loadable by Perfetto /
    ``chrome://tracing``.  This is the check CI runs on the exported
    artifact trace.
    """
    problems: list[str] = []
    if not isinstance(payload, Mapping):
        return ["top level is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "C", "M"):
            problems.append(f"{where}: unsupported phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if phase == "M":
            if event["name"] not in ("process_name", "thread_name"):
                problems.append(f"{where}: unknown metadata {event['name']!r}")
            args = event.get("args")
            if not isinstance(args, Mapping) or not isinstance(
                args.get("name"), str
            ):
                problems.append(f"{where}: metadata args.name missing")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: missing integer tid")
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        else:  # "C"
            args = event.get("args")
            if not isinstance(args, Mapping) or not args:
                problems.append(f"{where}: counter without args")
            elif not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"{where}: non-numeric counter value")
    return problems


def write_chrome_trace(path: str | Path, payload: Mapping[str, Any]) -> Path:
    """Serialize a trace payload to ``path`` (validated first)."""
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            "refusing to write an invalid trace: " + "; ".join(problems[:5])
        )
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=False))
    return path

"""Observability: metrics registry, ambient capture, Perfetto export.

The paper's contribution is *explaining* data movement — which link,
engine or NUMA hop ate the bandwidth — so the simulator needs more
than end-to-end numbers.  This package provides:

- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters,
  gauges, time-weighted series and per-channel transport accounting,
  near-zero cost when disabled (``if metrics:`` guard, mirroring the
  tracer);
- :func:`capture` (:mod:`repro.obs.capture`) — an ambient observation
  context so measurement functions that build their own sessions get
  instrumented without signature changes;
- :mod:`repro.obs.perfetto` — Chrome-trace/Perfetto JSON export of
  tracer timelines plus channel-rate counter tracks and provenance;
- :func:`trace_experiment` (:mod:`repro.obs.experiment`) — run one
  artifact observed and lay its points out on a single timeline.
"""

from .capture import ObservationContext, active, capture
from .experiment import trace_experiment
from .metrics import (
    NULL_METRICS,
    ChannelUsage,
    Counter,
    Gauge,
    MetricsRegistry,
    TimeSeries,
    format_snapshot,
    merge_snapshots,
    metric_name,
    resolve_metrics,
)
from .perfetto import (
    build_chrome_trace,
    build_provenance,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "ObservationContext",
    "active",
    "capture",
    "trace_experiment",
    "NULL_METRICS",
    "ChannelUsage",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "TimeSeries",
    "format_snapshot",
    "merge_snapshots",
    "metric_name",
    "resolve_metrics",
    "build_chrome_trace",
    "build_provenance",
    "validate_chrome_trace",
    "write_chrome_trace",
]

"""Observability: metrics registry, ambient capture, Perfetto export.

The paper's contribution is *explaining* data movement — which link,
engine or NUMA hop ate the bandwidth — so the simulator needs more
than end-to-end numbers.  This package provides:

- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters,
  gauges, time-weighted series and per-channel transport accounting,
  near-zero cost when disabled (``if metrics:`` guard, mirroring the
  tracer);
- :func:`capture` (:mod:`repro.obs.capture`) — an ambient observation
  context so measurement functions that build their own sessions get
  instrumented without signature changes;
- :class:`SpanRecorder` (:mod:`repro.obs.spans`) — causal spans with
  parent/child edges and per-interval bottleneck blame, fed by the
  fair-share solver's attribution;
- :mod:`repro.obs.attribution` — critical-path extraction over the
  span DAG and ranked "why was this slow" blame tables;
- :mod:`repro.obs.report` — self-contained HTML/JSON run reports
  (``repro report`` / ``repro explain``);
- :mod:`repro.obs.perfetto` — Chrome-trace/Perfetto JSON export of
  tracer timelines plus channel-rate counter tracks, span slices with
  causality flow-arrows, and provenance;
- :func:`trace_experiment` (:mod:`repro.obs.experiment`) — run one
  artifact observed and lay its points out on a single timeline.
"""

from .attribution import (
    CriticalPath,
    PathSegment,
    blame_ranking,
    critical_path,
    explain_spans,
    span_subtree,
)
from .capture import ObservationContext, active, capture
from .experiment import trace_experiment
from .metrics import (
    NULL_METRICS,
    ChannelUsage,
    Counter,
    Gauge,
    MetricsRegistry,
    TimeSeries,
    format_snapshot,
    merge_snapshots,
    metric_name,
    resolve_metrics,
)
from .perfetto import (
    build_chrome_trace,
    build_provenance,
    validate_chrome_trace,
    write_chrome_trace,
)
from .report import collect_report, explain_artifact, render_html, write_report
from .spans import (
    NULL_SPANS,
    Span,
    SpanRecorder,
    merge_point_spans,
    resolve_spans,
    span_dicts,
)

__all__ = [
    "ObservationContext",
    "active",
    "capture",
    "trace_experiment",
    "NULL_METRICS",
    "ChannelUsage",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "TimeSeries",
    "format_snapshot",
    "merge_snapshots",
    "metric_name",
    "resolve_metrics",
    "build_chrome_trace",
    "build_provenance",
    "validate_chrome_trace",
    "write_chrome_trace",
    "NULL_SPANS",
    "Span",
    "SpanRecorder",
    "merge_point_spans",
    "resolve_spans",
    "span_dicts",
    "CriticalPath",
    "PathSegment",
    "blame_ranking",
    "critical_path",
    "explain_spans",
    "span_subtree",
    "collect_report",
    "explain_artifact",
    "render_html",
    "write_report",
]

"""The metrics registry: counters, gauges, time-weighted series.

The simulator's observability layer mirrors the tracer's cost model:
hot call sites hold a reference to a :class:`MetricsRegistry` and guard
with ``if metrics:`` — a *disabled* registry is falsy, so the guarded
block (and every metric object, dict lookup and float op inside it) is
never evaluated.  The shared :data:`NULL_METRICS` singleton is what
uninstrumented stacks carry, making the disabled path one attribute
load plus one branch.

Three primitive metric kinds cover the paper's questions ("which link,
engine or NUMA hop ate the bandwidth?"):

- :class:`Counter` — monotonically increasing event counts (events
  delivered, memcpy calls, XNACK faults, RCCL steps);
- :class:`Gauge` — last-value-wins levels with a running max (heap
  depth, active flows);
- :class:`TimeSeries` — a time-weighted histogram of a level over
  *simulated* time: it keeps the integral (for time-weighted means),
  the max, and a bounded ring of ``(time, value)`` samples for counter
  tracks in the Perfetto export;
- :class:`ChannelUsage` — per-channel transport accounting (bytes
  moved, busy seconds, flows carried) from which achieved-vs-peak
  utilization falls out as ``bytes / busy_seconds / capacity``.

Snapshots are plain JSON-able dicts, so worker processes can ship them
back to the :class:`~repro.runner.SweepRunner`, which folds them
together with :func:`merge_snapshots`.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Hashable, Iterable, Mapping

#: Default bound on retained ``(time, value)`` samples per series.
DEFAULT_SAMPLE_CAPACITY = 4096


def metric_name(raw: Hashable) -> str:
    """Stable display name of a metric or channel id.

    Channel ids are tuples (``("link", "gcd0-gcd1:quad", "fwd")``,
    ``("sdma", 0, "out")``, ``("numaport", 1)``…); they flatten to
    ``/``-joined strings so snapshots and trace files stay JSON-able.
    """
    if isinstance(raw, str):
        return raw
    if isinstance(raw, tuple):
        return "/".join(str(part) for part in raw)
    return str(raw)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount


class Gauge:
    """A last-value-wins level with a running maximum."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        if value > self.max_value:
            self.max_value = value


class TimeSeries:
    """A time-weighted value history (bounded sample retention).

    :meth:`observe` records that the level changed to ``value`` at
    simulated time ``t``; the previous level is integrated over the
    elapsed interval, so :meth:`mean` is the *time-weighted* average —
    a level held for 9 s at 10 and 1 s at 0 averages 9, not 5.
    """

    __slots__ = (
        "name",
        "integral",
        "max_value",
        "_last_t",
        "_last_v",
        "_start_t",
        "samples",
        "dropped",
    )

    def __init__(
        self, name: str, *, capacity: int | None = DEFAULT_SAMPLE_CAPACITY
    ) -> None:
        self.name = name
        self.integral = 0.0
        self.max_value = 0.0
        self._last_t: float | None = None
        self._last_v = 0.0
        self._start_t = 0.0
        self.samples: deque[tuple[float, float]] = deque(maxlen=capacity)
        #: Samples evicted by the ring buffer (summary stats still exact).
        self.dropped = 0

    def observe(self, t: float, value: float) -> None:
        """The level became ``value`` at time ``t``."""
        if self._last_t is None:
            self._start_t = t
        else:
            dt = t - self._last_t
            if dt > 0:
                self.integral += self._last_v * dt
        self._last_t = t
        self._last_v = value
        if value > self.max_value:
            self.max_value = value
        if self.samples.maxlen is not None and len(self.samples) == self.samples.maxlen:
            self.dropped += 1
        self.samples.append((t, value))

    @property
    def elapsed(self) -> float:
        """Observed window length (first to last observation)."""
        if self._last_t is None:
            return 0.0
        return self._last_t - self._start_t

    def mean(self) -> float:
        """Time-weighted mean over the observed window (0 if empty)."""
        window = self.elapsed
        if window <= 0:
            return 0.0
        return self.integral / window


class ChannelUsage:
    """Transport accounting of one flow-network channel.

    Updated by the flow network on every rate change: ``bytes`` is the
    integral of the channel's allocated rate, ``busy_seconds`` the time
    with at least one flow aboard, ``flows`` the number of flows that
    ever crossed it.  ``achieved_rate`` (bytes per busy second) against
    ``capacity`` is the paper's achieved-vs-peak utilization.
    """

    __slots__ = (
        "name",
        "capacity",
        "bytes",
        "busy_seconds",
        "flows",
        "max_concurrent_flows",
        "samples",
        "dropped",
    )

    def __init__(
        self,
        name: str,
        capacity: float,
        *,
        sample_capacity: int | None = DEFAULT_SAMPLE_CAPACITY,
    ) -> None:
        self.name = name
        self.capacity = capacity
        self.bytes = 0.0
        self.busy_seconds = 0.0
        self.flows = 0
        self.max_concurrent_flows = 0
        #: Ring of ``(interval start time, allocated bytes/s)`` samples.
        self.samples: deque[tuple[float, float]] = deque(maxlen=sample_capacity)
        self.dropped = 0

    def account(self, start: float, dt: float, rate: float, nflows: int) -> None:
        """Fold one constant-rate interval into the totals."""
        self.bytes += rate * dt
        self.busy_seconds += dt
        if nflows > self.max_concurrent_flows:
            self.max_concurrent_flows = nflows
        if self.samples.maxlen is not None and len(self.samples) == self.samples.maxlen:
            self.dropped += 1
        self.samples.append((start, rate))

    @property
    def achieved_rate(self) -> float:
        """Mean bytes/s while the channel was busy."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.bytes / self.busy_seconds

    @property
    def utilization(self) -> float:
        """Achieved rate over peak capacity (busy intervals only)."""
        if self.capacity <= 0 or not math.isfinite(self.capacity):
            return 0.0
        return self.achieved_rate / self.capacity


class MetricsRegistry:
    """Holds every metric of one observed simulation.

    Falsy when disabled, so hot paths guard with ``if metrics:`` and a
    disabled registry costs one branch.  Metric objects are created on
    first use; callers should hold the returned object (or the
    registry) rather than re-looking names up in inner loops.
    """

    __slots__ = ("enabled", "sample_capacity", "_counters", "_gauges", "_series", "_channels")

    def __init__(
        self,
        enabled: bool = True,
        *,
        sample_capacity: int | None = DEFAULT_SAMPLE_CAPACITY,
    ) -> None:
        self.enabled = enabled
        self.sample_capacity = sample_capacity
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._series: dict[str, TimeSeries] = {}
        self._channels: dict[str, ChannelUsage] = {}

    def __bool__(self) -> bool:
        """Truthiness == enabled, so call sites can ``if metrics:``."""
        return self.enabled

    # -- metric factories ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The named gauge (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def timeseries(self, name: str) -> TimeSeries:
        """The named time-weighted series (created on first use)."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(
                name, capacity=self.sample_capacity
            )
        return series

    def channel(self, channel_id: Hashable, capacity: float) -> ChannelUsage:
        """Usage accounting of a flow-network channel (created on use)."""
        name = metric_name(channel_id)
        usage = self._channels.get(name)
        if usage is None:
            usage = self._channels[name] = ChannelUsage(
                name, capacity, sample_capacity=self.sample_capacity
            )
        return usage

    # -- views --------------------------------------------------------------

    def counters(self) -> dict[str, Counter]:
        """Name → counter mapping (live objects)."""
        return dict(self._counters)

    def gauges(self) -> dict[str, Gauge]:
        """Name → gauge mapping (live objects)."""
        return dict(self._gauges)

    def channels(self) -> dict[str, ChannelUsage]:
        """Name → channel usage mapping (live objects)."""
        return dict(self._channels)

    def series(self) -> dict[str, TimeSeries]:
        """Name → time series mapping (live objects)."""
        return dict(self._series)

    # -- snapshot -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able summary of every metric (samples excluded)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"value": g.value, "max": g.max_value}
                for n, g in sorted(self._gauges.items())
            },
            "timeseries": {
                n: {
                    "mean": s.mean(),
                    "max": s.max_value,
                    "samples": len(s.samples),
                    "dropped": s.dropped,
                }
                for n, s in sorted(self._series.items())
            },
            "channels": {
                n: {
                    "capacity": u.capacity,
                    "bytes": u.bytes,
                    "busy_seconds": u.busy_seconds,
                    "flows": u.flows,
                    "max_concurrent_flows": u.max_concurrent_flows,
                    "achieved_rate": u.achieved_rate,
                    "utilization": u.utilization,
                    "samples": len(u.samples),
                    "dropped": u.dropped,
                }
                for n, u in sorted(self._channels.items())
            },
        }

    def describe(self) -> str:
        """Multi-line human summary (for ``--metrics`` output)."""
        return format_snapshot(self.snapshot())


#: The shared disabled registry uninstrumented stacks default to.
NULL_METRICS = MetricsRegistry(enabled=False, sample_capacity=0)


def resolve_metrics(
    metrics: "MetricsRegistry | bool | None",
    *,
    sample_capacity: int | None = None,
) -> MetricsRegistry:
    """Coerce a constructor argument into a registry.

    ``None``/``False`` → the shared disabled registry; ``True`` → a
    fresh enabled registry; a registry passes through.
    ``sample_capacity`` bounds the per-series sample rings of a fresh
    registry (long sweeps cap memory this way); it is ignored when an
    existing registry is handed in, since that registry already chose
    its retention.
    """
    if metrics is None or metrics is False:
        return NULL_METRICS
    if metrics is True:
        if sample_capacity is not None:
            return MetricsRegistry(enabled=True, sample_capacity=sample_capacity)
        return MetricsRegistry(enabled=True)
    return metrics


# -- snapshot folding ------------------------------------------------------


def merge_snapshots(
    base: Mapping[str, Any] | None, update: Mapping[str, Any]
) -> dict[str, Any]:
    """Fold one snapshot into another (for pool-worker aggregation).

    Counters, bytes, busy seconds and flow counts add; gauges and
    maxima take the max; channel capacities must agree (they describe
    the same hardware) and utilization is recomputed from the merged
    totals.  ``base=None`` starts a fresh accumulator.
    """
    merged: dict[str, Any] = {
        "counters": dict(base["counters"]) if base else {},
        "gauges": {k: dict(v) for k, v in base["gauges"].items()} if base else {},
        "timeseries": {k: dict(v) for k, v in base["timeseries"].items()}
        if base
        else {},
        "channels": {k: dict(v) for k, v in base["channels"].items()}
        if base
        else {},
    }
    for name, value in update.get("counters", {}).items():
        merged["counters"][name] = merged["counters"].get(name, 0) + value
    for name, gauge in update.get("gauges", {}).items():
        slot = merged["gauges"].setdefault(name, {"value": 0.0, "max": 0.0})
        slot["value"] = gauge["value"]
        slot["max"] = max(slot["max"], gauge["max"])
    for name, series in update.get("timeseries", {}).items():
        slot = merged["timeseries"].setdefault(
            name, {"mean": 0.0, "max": 0.0, "samples": 0, "dropped": 0}
        )
        # Means from disjoint runs cannot be re-weighted without the
        # windows; keep the max-of-means as an upper-bound summary.
        slot["mean"] = max(slot["mean"], series["mean"])
        slot["max"] = max(slot["max"], series["max"])
        slot["samples"] += series["samples"]
        slot["dropped"] += series["dropped"]
    for name, usage in update.get("channels", {}).items():
        slot = merged["channels"].get(name)
        if slot is None:
            merged["channels"][name] = dict(usage)
            continue
        slot["bytes"] += usage["bytes"]
        slot["busy_seconds"] += usage["busy_seconds"]
        slot["flows"] += usage["flows"]
        slot["max_concurrent_flows"] = max(
            slot["max_concurrent_flows"], usage["max_concurrent_flows"]
        )
        slot["samples"] = slot.get("samples", 0) + usage.get("samples", 0)
        slot["dropped"] = slot.get("dropped", 0) + usage.get("dropped", 0)
        busy = slot["busy_seconds"]
        slot["achieved_rate"] = slot["bytes"] / busy if busy > 0 else 0.0
        capacity = slot["capacity"]
        slot["utilization"] = (
            slot["achieved_rate"] / capacity if capacity > 0 else 0.0
        )
    return merged


def format_snapshot(snapshot: Mapping[str, Any], *, top: int = 12) -> str:
    """Human-readable rendering of a snapshot (for the CLI)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<40s} {value:>14,.0f}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges (value / max):")
        for name, gauge in sorted(gauges.items()):
            lines.append(
                f"  {name:<40s} {gauge['value']:>10,.0f} / {gauge['max']:>10,.0f}"
            )
    channels = snapshot.get("channels", {})
    busy = [
        (name, usage)
        for name, usage in channels.items()
        if usage["busy_seconds"] > 0
    ]
    if busy:
        busy.sort(key=lambda item: item[1]["bytes"], reverse=True)
        shown = busy[:top]
        lines.append(
            f"channels by bytes moved (top {len(shown)} of {len(busy)} busy):"
        )
        for name, usage in shown:
            lines.append(
                f"  {name:<40s} {usage['bytes'] / 1e9:>9.3f} GB  "
                f"{usage['achieved_rate'] / 1e9:>7.2f} GB/s achieved  "
                f"{usage['utilization'] * 100:>5.1f}% of peak  "
                f"({usage['flows']} flow(s))"
            )
    if not lines:
        return "no metrics recorded"
    return "\n".join(lines)

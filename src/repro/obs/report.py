"""Self-contained run reports: ``repro report`` / ``repro explain``.

The paper's artifact story is "run the battery, look at the numbers,
explain the movement"; this module packages one artifact run into a
single reviewable document:

- the **blame table** — critical-path time ranked by limiting channel
  or rate cap (from :mod:`repro.obs.attribution`), answering *why* the
  run took as long as it did;
- **per-link utilization** — bytes, busy time and achieved rate per
  channel, from the merged :class:`~repro.obs.metrics.ChannelUsage`
  snapshots of every sim point;
- the **validation battery** — PASS/FAIL lines from
  :func:`repro.core.validation.validate_node`;
- a **provenance block** — calibration/topology fingerprints, package
  version, git SHA — so the report is self-describing;
- the artifact's paper-style text report.

:func:`collect_report` produces the JSON document;
:func:`render_html` turns it into a single HTML file with no external
assets (inline CSS only), so it can be attached to a CI run or an
email and opened anywhere.  Runs always bypass the result cache —
cached point values carry no spans, and a report without a blame
table would be misleading.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Mapping

from .attribution import critical_path, explain_spans
from .perfetto import build_provenance

#: Rows shown in the HTML blame and channel tables.
_TABLE_ROWS = 20


def _resolve_calibration_arg(calibration: Any) -> tuple[Any, dict[str, Any]]:
    """``(profile, provenance)`` from a profile object or a JSON path."""
    from ..core.calibration import CalibrationProfile, load_profile

    if isinstance(calibration, CalibrationProfile):
        return calibration, {}
    return load_profile(calibration)


def calibration_block(
    calibration: Any = None,
) -> dict[str, Any]:
    """The report's calibration provenance section.

    ``source`` is ``"default"`` for the built-in MI250X constants,
    ``"fitted-from-telemetry"`` (with the telemetry fingerprint and
    residual summary) for a profile written by ``repro calibrate``,
    and ``"custom"`` for any other profile.
    """
    from ..core.calibration import DEFAULT_CALIBRATION

    if calibration is None:
        return {
            "source": "default",
            "fingerprint": DEFAULT_CALIBRATION.fingerprint(),
        }
    profile, provenance = _resolve_calibration_arg(calibration)
    block: dict[str, Any] = {
        "source": provenance.get(
            "source",
            "default" if profile == DEFAULT_CALIBRATION else "custom",
        ),
        "fingerprint": profile.fingerprint(),
    }
    for key in (
        "telemetry",
        "telemetry_fingerprint",
        "fitted_fields",
        "initial_rms",
        "final_rms",
        "evaluations",
    ):
        if key in provenance:
            block[key] = provenance[key]
    return block


def collect_report(
    artifact: str,
    *,
    jobs: int | str | None = 1,
    top: int = _TABLE_ROWS,
    validate: bool = True,
    params: Mapping[str, Any] | None = None,
    faults: Any = None,
    topology: Any = None,
    algorithm: str | None = None,
    calibration: Any = None,
    telemetry: Any = None,
    window: float | None = None,
) -> dict[str, Any]:
    """Run one artifact with span capture and assemble the report data.

    Accepts registry ids (``"fig11"``) or driver module names
    (``"fig11_collectives"``).  The sweep bypasses the result cache so
    every point is executed with spans on.  ``faults`` (a
    :class:`~repro.faults.FaultScenario`) runs the artifact under
    fault injection — ``repro inject`` — and stamps the scenario into
    the report; the validation battery still runs healthy, it checks
    the simulator, not the scenario.

    ``calibration`` (a profile or a ``repro-calibration/1`` JSON path)
    stamps the calibration block; ``telemetry`` (a stream or JSONL
    path) additionally shadow-replays the stream under that profile —
    windowed by ``window`` seconds — and attaches the drift ledger.
    """
    from .. import figures
    from ..core.validation import validate_node
    from ..runner import SweepRunner

    experiment_id = figures.canonical_id(artifact)
    experiment = figures.SUITE.get(experiment_id)
    runner = SweepRunner(
        jobs,
        use_cache=False,
        capture_spans=True,
        faults=faults,
        topology=topology,
        algorithm=algorithm,
    )
    result = runner.run_experiment(experiment_id, **dict(params or {}))
    spans = runner.stats.spans or []
    path = critical_path(spans)

    snapshot = runner.stats.metrics or {}
    channels = snapshot.get("channels", {})

    validation: dict[str, Any] | None = None
    if validate:
        validation = validate_node(runner=SweepRunner(jobs)).as_dict()

    profile = None
    if calibration is not None:
        profile, _ = _resolve_calibration_arg(calibration)

    drift: dict[str, Any] | None = None
    if telemetry is not None:
        from ..twin.replay import shadow_replay
        from ..twin.schema import TelemetryStream, load_telemetry

        stream = (
            telemetry
            if isinstance(telemetry, TelemetryStream)
            else load_telemetry(telemetry)
        )
        drift = shadow_replay(
            stream, topology=topology, calibration=profile, window=window
        ).to_json()

    report: dict[str, Any] = {
        "artifact": experiment_id,
        "paper_artifact": experiment.paper_artifact,
        "title": experiment.title,
        "report_text": figures.report(experiment_id, result),
        "wall_seconds": getattr(result, "wall_seconds", 0.0),
        "span_count": len(spans),
        "critical_path": path.as_dict(),
        "blame": [
            {"key": key, "seconds": seconds}
            for key, seconds in path.ranked_blame()
        ],
        "unattributed_seconds": path.unattributed(),
        "explain": path.format(top=top),
        "channels": channels,
        "validation": validation,
        "calibration": calibration_block(calibration),
        "drift": drift,
        "provenance": build_provenance(
            calibration=profile, extra={"artifact": experiment_id}
        ),
        "faults": (
            {
                "name": faults.name,
                "fingerprint": faults.fingerprint(),
                "events": faults.describe(),
            }
            if faults
            else None
        ),
        "runner": {
            "points": runner.stats.points,
            "jobs": runner.stats.jobs,
            "wall_seconds": runner.stats.wall_seconds,
        },
        "spans": spans,
    }
    return report


def explain_artifact(
    artifact: str,
    *,
    span_id: int | None = None,
    jobs: int | str | None = 1,
    top: int = 10,
    faults: Any = None,
    topology: Any = None,
    algorithm: str | None = None,
) -> str:
    """``repro explain``: run one artifact and narrate its critical path.

    With ``span_id``, restricts the breakdown to that span's subtree
    (span ids are printed by ``repro report``'s JSON output).  With
    ``faults``, the artifact runs under the scenario and the blame
    table picks up the injector's ``fault:*`` channel aliases.
    """
    from .. import figures
    from ..runner import SweepRunner

    experiment_id = figures.canonical_id(artifact)
    runner = SweepRunner(
        jobs,
        use_cache=False,
        capture_spans=True,
        faults=faults,
        topology=topology,
        algorithm=algorithm,
    )
    runner.run_experiment(experiment_id)
    spans = runner.stats.spans or []
    header = (
        f"{experiment_id}: {len(spans)} span(s) over "
        f"{runner.stats.points} point(s)"
    )
    if faults:
        header += f" under scenario {faults.name!r}"
    return header + "\n" + explain_spans(spans, span_id=span_id, top=top)


# -- HTML rendering --------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 64rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #16324f; }
h2 { font-size: 1.1rem; margin-top: 2rem; color: #16324f; }
table { border-collapse: collapse; width: 100%; font-size: 0.9rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #d8dee9; }
th { background: #eceff4; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { background: #5e81ac; height: 0.7rem; display: inline-block; }
.pass { color: #1d7a33; font-weight: 600; }
.fail { color: #b3261e; font-weight: 600; }
pre { background: #f4f6f8; padding: 0.8rem; overflow-x: auto;
      font-size: 0.8rem; }
.prov { font-size: 0.8rem; color: #4c566a; }
"""


def _format_seconds(seconds: float) -> str:
    return f"{seconds * 1e6:,.1f}"


def render_html(report: Mapping[str, Any]) -> str:
    """One self-contained HTML document (inline CSS, no assets)."""
    e = html.escape
    out: list[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>repro report — {e(str(report['artifact']))}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{e(str(report['artifact']))} — {e(str(report['title']))}"
        f" <small>({e(str(report['paper_artifact']))})</small></h1>",
    ]

    provenance = report.get("provenance") or {}
    prov_bits = " · ".join(
        f"{e(str(key))}: {e(str(value))}"
        for key, value in sorted(provenance.items())
    )
    out.append(f"<p class='prov'>{prov_bits}</p>")

    cp = report.get("critical_path") or {}
    length = float(cp.get("length", 0.0))
    out.append("<h2>Why it took this long — critical-path blame</h2>")
    out.append(
        f"<p>critical path: <b>{_format_seconds(length)} µs</b> across "
        f"{len(cp.get('segments', []))} segment(s); "
        f"{int(report.get('span_count', 0))} causal span(s) recorded.</p>"
    )
    blame = report.get("blame") or []
    if blame:
        out.append(
            "<table><tr><th>limited by</th><th class='num'>µs</th>"
            "<th class='num'>share</th><th></th></tr>"
        )
        for entry in blame[:_TABLE_ROWS]:
            seconds = float(entry["seconds"])
            share = seconds / length if length > 0 else 0.0
            out.append(
                f"<tr><td><code>{e(str(entry['key']))}</code></td>"
                f"<td class='num'>{_format_seconds(seconds)}</td>"
                f"<td class='num'>{share * 100:.1f}%</td>"
                f"<td><span class='bar' style='width:{share * 14:.2f}rem'>"
                "</span></td></tr>"
            )
        out.append("</table>")
    else:
        out.append("<p>no spans recorded — nothing to attribute.</p>")

    channels = report.get("channels") or {}
    busy = sorted(
        (
            (name, usage)
            for name, usage in channels.items()
            if usage.get("busy_seconds", 0) > 0
        ),
        key=lambda item: -item[1].get("bytes", 0),
    )
    out.append("<h2>Per-link utilization</h2>")
    if busy:
        out.append(
            "<table><tr><th>channel</th><th class='num'>GiB moved</th>"
            "<th class='num'>busy ms</th><th class='num'>achieved GB/s</th>"
            "<th class='num'>utilization</th><th class='num'>flows</th>"
            "</tr>"
        )
        for name, usage in busy[:_TABLE_ROWS]:
            out.append(
                f"<tr><td><code>{e(name)}</code></td>"
                f"<td class='num'>{usage.get('bytes', 0) / 2**30:,.2f}</td>"
                f"<td class='num'>"
                f"{usage.get('busy_seconds', 0.0) * 1e3:,.2f}</td>"
                f"<td class='num'>"
                f"{usage.get('achieved_rate', 0.0) / 1e9:,.1f}</td>"
                f"<td class='num'>"
                f"{usage.get('utilization', 0.0) * 100:.1f}%</td>"
                f"<td class='num'>{usage.get('flows', 0)}</td></tr>"
            )
        if len(busy) > _TABLE_ROWS:
            out.append("</table>")
            out.append(
                f"<p class='prov'>… and {len(busy) - _TABLE_ROWS} more "
                "channel(s) in the JSON report.</p>"
            )
        else:
            out.append("</table>")
    else:
        out.append("<p>no channel activity recorded.</p>")

    validation = report.get("validation")
    out.append("<h2>Validation battery</h2>")
    if validation:
        status = (
            "<span class='pass'>PASS</span>"
            if validation.get("passed")
            else "<span class='fail'>FAIL</span>"
        )
        out.append(
            f"<p>{status} — {validation['total'] - validation['failed']}"
            f"/{validation['total']} checks passed.</p>"
        )
        out.append(
            "<table><tr><th>check</th><th>status</th>"
            "<th class='num'>observed</th><th class='num'>expected</th>"
            "<th>unit</th></tr>"
        )
        for check in validation.get("checks", []):
            ok = bool(check.get("passed"))
            out.append(
                f"<tr><td><code>{e(str(check['check_id']))}</code></td>"
                f"<td class='{'pass' if ok else 'fail'}'>"
                f"{'PASS' if ok else 'FAIL'}</td>"
                f"<td class='num'>{float(check['observed']):,.2f}</td>"
                f"<td class='num'>{float(check['expected']):,.2f}</td>"
                f"<td>{e(str(check['unit']))}</td></tr>"
            )
        out.append("</table>")
    else:
        out.append("<p>validation skipped.</p>")

    cal = report.get("calibration")
    if cal:
        out.append("<h2>Calibration</h2>")
        bits = [
            f"source: <b>{e(str(cal.get('source', 'default')))}</b>",
            f"fingerprint: <code>{e(str(cal.get('fingerprint', ''))[:16])}</code>",
        ]
        if "final_rms" in cal:
            bits.append(
                f"residual RMS {float(cal.get('initial_rms', 0.0)) * 100:.2f}%"
                f" &rarr; {float(cal['final_rms']) * 100:.2f}%"
            )
        if "telemetry" in cal:
            bits.append(f"fitted from <code>{e(str(cal['telemetry']))}</code>")
        out.append(f"<p>{' · '.join(bits)}</p>")

    drift = report.get("drift")
    if drift:
        out.append("<h2>Digital-twin drift</h2>")
        overall = drift.get("overall") or {}
        out.append(
            f"<p>telemetry <code>{e(str(drift.get('telemetry', '')))}</code>: "
            f"{int(drift.get('record_count', 0))} record(s), "
            f"{len(drift.get('windows', []))} window(s); "
            f"mean |drift| {float(overall.get('mean_abs_drift', 0.0)) * 100:.2f}%, "
            f"max {float(drift.get('max_abs_drift', 0.0)) * 100:.2f}%.</p>"
        )
        by_link = drift.get("by_link") or {}
        if by_link:
            ranked = sorted(
                by_link.items(),
                key=lambda item: -float(item[1].get("max_abs_drift", 0.0)),
            )
            threshold = float(drift.get("alert_threshold", 0.0))
            out.append(
                "<table><tr><th>link</th><th class='num'>records</th>"
                "<th class='num'>mean |drift|</th>"
                "<th class='num'>max |drift|</th><th></th></tr>"
            )
            for name, stat in ranked[:_TABLE_ROWS]:
                worst = float(stat.get("max_abs_drift", 0.0))
                flag = (
                    "<span class='fail'>ALERT</span>"
                    if threshold and worst > threshold
                    else ""
                )
                out.append(
                    f"<tr><td><code>{e(str(name))}</code></td>"
                    f"<td class='num'>{int(stat.get('count', 0))}</td>"
                    f"<td class='num'>"
                    f"{float(stat.get('mean_abs_drift', 0.0)) * 100:.2f}%</td>"
                    f"<td class='num'>{worst * 100:.2f}%</td>"
                    f"<td>{flag}</td></tr>"
                )
            out.append("</table>")
        alerts = drift.get("alerts") or []
        if alerts:
            out.append(
                f"<p class='fail'>{len(alerts)} drift alert(s) above the "
                f"{float(drift.get('alert_threshold', 0.0)) * 100:.1f}% "
                "threshold.</p>"
            )

    out.append("<h2>Artifact report</h2>")
    out.append(f"<pre>{e(str(report.get('report_text', '')))}</pre>")
    out.append("</body></html>")
    return "\n".join(out)


def write_report(
    report: Mapping[str, Any],
    *,
    html_path: str | Path | None = None,
    json_path: str | Path | None = None,
) -> list[Path]:
    """Write the HTML and/or JSON renderings; returns written paths."""
    written: list[Path] = []
    if html_path is not None:
        path = Path(html_path)
        path.write_text(render_html(report))
        written.append(path)
    if json_path is not None:
        path = Path(json_path)
        path.write_text(json.dumps(report, indent=1, sort_keys=False))
        written.append(path)
    return written

"""Observed artifact runs: trace + metrics for a whole experiment.

``repro trace fig06`` needs a timeline for an artifact whose driver
decomposes into many independent sim points, each of which builds its
own simulated node starting at ``t = 0``.  Rendering them raw would
stack every point on top of the origin, so :func:`trace_experiment`
runs the points **serially** under per-point
:func:`~repro.obs.capture.capture` contexts and lays each point's
records (and channel-rate samples) out back-to-back on the exported
timeline, with a ``point`` slice spanning each one — the trace reads
like one long annotated run.

Summary metrics (counters, per-channel bytes/busy time) are folded
across points into a single registry, so the payload's
``otherData.metrics`` block describes the whole artifact.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..sim.trace import TraceRecord
from .capture import capture
from .metrics import MetricsRegistry
from .perfetto import build_chrome_trace, build_provenance

#: Simulated gap inserted between consecutive points on the timeline.
POINT_GAP_SECONDS = 1e-5


def _fold_point(
    export: MetricsRegistry, registry: MetricsRegistry, offset: float
) -> float:
    """Fold one point's registry into the export registry.

    Channel and series samples are shifted by ``offset`` so they land
    in the point's slot on the shared timeline.  Returns the latest
    (unshifted) sample time seen, so the caller can size the slot.
    """
    span = 0.0
    for name, counter in registry.counters().items():
        export.counter(name).inc(counter.value)
    for name, gauge in registry.gauges().items():
        export.gauge(name).set(gauge.value)
        slot = export.gauge(name)
        if gauge.max_value > slot.max_value:
            slot.max_value = gauge.max_value
    for name, series in registry.series().items():
        slot = export.timeseries(name)
        slot.integral += series.integral
        slot.dropped += series.dropped
        if series.max_value > slot.max_value:
            slot.max_value = series.max_value
        for t, value in series.samples:
            slot.samples.append((t + offset, value))
            if t > span:
                span = t
    for name, usage in registry.channels().items():
        slot = export.channel(name, usage.capacity)
        slot.bytes += usage.bytes
        slot.busy_seconds += usage.busy_seconds
        slot.flows += usage.flows
        slot.dropped += usage.dropped
        if usage.max_concurrent_flows > slot.max_concurrent_flows:
            slot.max_concurrent_flows = usage.max_concurrent_flows
        for t, rate in usage.samples:
            slot.samples.append((t + offset, rate))
            if t > span:
                span = t
    return span


def trace_experiment(
    experiment_id: str,
    *,
    params: Mapping[str, Any] | None = None,
    trace_capacity: int | None = None,
) -> dict[str, Any]:
    """Run an artifact observed; returns the Chrome-trace payload.

    Points execute serially (observation shares one process-ambient
    context, and a sequential layout is the goal anyway); the run also
    produces the artifact's result, available under
    ``otherData.metrics`` only as aggregates — use ``repro run`` for
    the numbers themselves.
    """
    from .. import figures

    params = dict(params or {})
    points = figures.sweep_points(experiment_id, **params)
    export = MetricsRegistry(enabled=True)
    records: list[TraceRecord] = []
    cursor = 0.0
    for point in points:
        with capture(trace_capacity=trace_capacity) as ctx:
            from ..runner.points import execute_point

            execute_point(point)
        span = 0.0
        for record in ctx.tracer.records():
            records.append(
                TraceRecord(
                    record.start + cursor,
                    record.end + cursor,
                    record.category,
                    record.label,
                    dict(record.detail),
                )
            )
            if record.end > span:
                span = record.end
        sample_span = _fold_point(export, ctx.metrics, cursor)
        if sample_span > span:
            span = sample_span
        records.append(
            TraceRecord(
                cursor,
                cursor + span,
                "point",
                point.label,
                {"experiment": experiment_id, "trace_dropped": ctx.tracer.dropped},
            )
        )
        cursor += span + POINT_GAP_SECONDS

    from ..core.calibration import DEFAULT_CALIBRATION
    from ..topology.presets import frontier_node

    provenance = build_provenance(
        calibration=DEFAULT_CALIBRATION,
        topology=frontier_node(),
        extra={"experiment": experiment_id, "points": len(points)},
    )
    return build_chrome_trace(records, metrics=export, provenance=provenance)

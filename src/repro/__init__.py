"""repro — simulator-based reproduction of *Understanding Data Movement
in AMD Multi-GPU Systems with Infinity Fabric* (Schieffer et al.,
SC 2024).

The package models an MI250X multi-GPU node — Infinity Fabric link
mesh, SDMA engines, NUMA domains, HBM, page migration — as a
deterministic discrete-event simulation, layers HIP-, MPI- and
RCCL-like runtimes on top, and reimplements every benchmark suite of
the paper's Table II against them.  ``repro.figures`` regenerates each
table and figure of the evaluation.

Quickstart::

    from repro import figures
    result, text = figures.run_and_report("fig06")
    print(text)

Layering (bottom → top):

``units/errors/config`` → ``topology`` → ``sim`` → ``core.calibration``
→ ``hardware`` → ``memory`` → ``hip`` → ``mpi``/``rccl`` →
``bench_suites`` → ``figures`` → ``core.methodology``.
"""

from . import config, errors, units
from .config import SimEnvironment
from .core.calibration import CalibrationProfile, DEFAULT_CALIBRATION
from .hardware.node import HardwareNode, frontier_hardware
from .hip.runtime import HipRuntime
from .topology.presets import frontier_node

__version__ = "0.1.0"

__all__ = [
    "config",
    "errors",
    "units",
    "SimEnvironment",
    "CalibrationProfile",
    "DEFAULT_CALIBRATION",
    "HardwareNode",
    "frontier_hardware",
    "HipRuntime",
    "frontier_node",
    "__version__",
]

"""repro — simulator-based reproduction of *Understanding Data Movement
in AMD Multi-GPU Systems with Infinity Fabric* (Schieffer et al.,
SC 2024).

The package models an MI250X multi-GPU node — Infinity Fabric link
mesh, SDMA engines, NUMA domains, HBM, page migration — as a
deterministic discrete-event simulation, layers HIP-, MPI- and
RCCL-like runtimes on top, and reimplements every benchmark suite of
the paper's Table II against them.  ``repro.figures`` regenerates each
table and figure of the evaluation.

Quickstart — :class:`Session` wires the whole stack in one object, and
:mod:`repro.api` is the stable, versioned import surface::

    from repro.api import ObsConfig, Session

    with Session(topology="mi250x", obs=ObsConfig(trace=True)) as s:
        src = s.hip.malloc(1 << 30, device=0)
        dst = s.hip.malloc(1 << 30, device=4)
        s.run(s.hip.memcpy_peer(dst, 4, src, 0))
        print(s.now, s.stats())

    import repro
    result, text = repro.figures.run_and_report("fig06")

Layering (bottom → top):

``units/errors/config`` → ``topology`` → ``sim`` → ``core.calibration``
→ ``hardware`` → ``memory`` → ``hip`` → ``mpi``/``rccl`` →
``bench_suites`` → ``figures`` → ``core.methodology``; ``Session``
fronts the whole stack.
"""

from . import config, errors, units
from .config import SimEnvironment
from .configs import ObsConfig, RunnerConfig
from .core.calibration import (
    CalibrationProfile,
    DEFAULT_CALIBRATION,
    dump_profile,
    load_profile,
)
from .faults import (
    FaultScenario,
    LinkDegrade,
    LinkFail,
    PageMigrationStorm,
    RetryPolicy,
    SdmaStall,
)
from .hardware.node import HardwareNode, frontier_hardware
from .hip.runtime import HipRuntime
from .runner import ResultCache, SimPoint, SweepRunner
from .session import Session, TOPOLOGY_PRESETS, resolve_topology
from .sim.fairshare import (
    FairshareSolver,
    FlowSpec,
    max_min_fair_rates,
    max_min_fair_rates as solve,
)
from .sim.trace import TraceRecord, Tracer
from .topology.presets import (
    dense_hive_node,
    frontier_node,
    mi250x_cluster,
    single_gpu_node,
)
from .twin import (
    TelemetryStream,
    fit_calibration,
    load_telemetry,
    shadow_replay,
    synthesize_telemetry,
)

__version__ = "0.11.0"

__all__ = [
    # The blessed surface.
    "Session",
    "ObsConfig",
    "RunnerConfig",
    "SweepRunner",
    "SimPoint",
    "ResultCache",
    "solve",
    "TraceRecord",
    "Tracer",
    "FairshareSolver",
    "FlowSpec",
    "max_min_fair_rates",
    "FaultScenario",
    "LinkDegrade",
    "LinkFail",
    "SdmaStall",
    "PageMigrationStorm",
    "RetryPolicy",
    "TelemetryStream",
    "load_telemetry",
    "shadow_replay",
    "fit_calibration",
    "synthesize_telemetry",
    "TOPOLOGY_PRESETS",
    "resolve_topology",
    "frontier_node",
    "single_gpu_node",
    "dense_hive_node",
    "mi250x_cluster",
    # Building blocks (still public, but Session is the front door).
    "config",
    "errors",
    "units",
    "SimEnvironment",
    "CalibrationProfile",
    "DEFAULT_CALIBRATION",
    "dump_profile",
    "load_profile",
    "HardwareNode",
    "frontier_hardware",
    "HipRuntime",
    "__version__",
]

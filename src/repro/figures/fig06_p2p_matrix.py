"""Figure 6: p2pBandwidthLatencyTest matrices (hops, latency, bandwidth)."""

from __future__ import annotations

from ..bench_suites.p2p_matrix import full_experiment
from ..core.experiment import ExperimentResult
from ..core.report import matrix_table

TITLE = "Peer-to-peer hop/latency/bandwidth matrices (Figure 6)"
ARTIFACT = "Figure 6"


def run() -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    result = full_experiment()
    result.title = TITLE
    return result


def _panel(result: ExperimentResult, panel: str) -> dict[tuple[int, int], float]:
    return {
        (m.meta["src"], m.meta["dst"]): m.value
        for m in result.series(panel=panel)
    }


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    parts = [
        matrix_table(
            _panel(result, "a"),
            title="(a) shortest-path length [hops]",
            digits=0,
        ),
        "",
        matrix_table(
            _panel(result, "b"),
            title="(b) hipMemcpyPeerAsync latency",
            scale=1e-6,
            unit="us",
        ),
        "",
        matrix_table(
            _panel(result, "c"),
            title="(c) unidirectional bandwidth",
            scale=1e9,
            unit="GB/s",
        ),
    ]
    return "\n".join(parts)

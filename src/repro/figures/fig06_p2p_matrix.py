"""Figure 6: p2pBandwidthLatencyTest matrices (hops, latency, bandwidth)."""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.p2p_matrix import matrix_points, matrix_result
from ..core.experiment import ExperimentResult
from ..core.report import matrix_table
from ..runner import SimPoint

TITLE = "Peer-to-peer hop/latency/bandwidth matrices (Figure 6)"
ARTIFACT = "Figure 6"


def sweep_points() -> list[SimPoint]:
    """Decompose the reproduction into independent sim points."""
    return matrix_points()


def merge_outputs(
    points: Sequence[SimPoint], outputs: Sequence[float]
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    result = matrix_result(points, outputs)
    result.title = TITLE
    return result


def run() -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points()
    return merge_outputs(points, [p.execute() for p in points])


def _panel(result: ExperimentResult, panel: str) -> dict[tuple[int, int], float]:
    return {
        (m.meta["src"], m.meta["dst"]): m.value
        for m in result.series(panel=panel)
    }


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    parts = [
        matrix_table(
            _panel(result, "a"),
            title="(a) shortest-path length [hops]",
            digits=0,
        ),
        "",
        matrix_table(
            _panel(result, "b"),
            title="(b) hipMemcpyPeerAsync latency",
            scale=1e-6,
            unit="us",
        ),
        "",
        matrix_table(
            _panel(result, "c"),
            title="(c) unidirectional bandwidth",
            scale=1e9,
            unit="GB/s",
        ),
    ]
    return "\n".join(parts)

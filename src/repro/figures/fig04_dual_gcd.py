"""Figure 4: dual-GCD CPU-GPU STREAM, same-GPU vs spread placement."""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.stream import dual_gcd_points, dual_gcd_result
from ..core.bounds import cpu_gpu_peak_bidirectional
from ..core.experiment import ExperimentResult
from ..core.report import bar_table
from ..core.sweep import MULTI_GPU_STREAM_BYTES
from ..runner import SimPoint
from ..topology.context import resolve_default as resolve_default_topology

TITLE = "CPU-GPU STREAM: one vs two GCDs (Figure 4)"
ARTIFACT = "Figure 4"


def sweep_points(size: int = MULTI_GPU_STREAM_BYTES) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points."""
    return dual_gcd_points(size)


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    size: int = MULTI_GPU_STREAM_BYTES,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    result = dual_gcd_result(points, outputs)
    result.title = TITLE
    return result


def run(size: int = MULTI_GPU_STREAM_BYTES) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(size)
    return merge_outputs(points, [p.execute() for p in points])


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    topology = resolve_default_topology()
    rows = []
    reference = {}
    for m in result.measurements:
        label = str(m.meta["case"])
        rows.append((label, m.value))
        reference[label] = cpu_gpu_peak_bidirectional(
            topology, m.meta["placement"]
        )
    return bar_table(rows, title=TITLE, reference=reference)

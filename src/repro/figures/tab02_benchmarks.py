"""Table II: evaluated benchmarks and programming interfaces.

Validates that every registry row points at an importable suite
module, then prints the table.
"""

from __future__ import annotations

import importlib

from ..core.experiment import ExperimentResult
from ..core.registry import TABLE_II, format_table_ii

TITLE = "Evaluated benchmarks and interfaces (Table II)"
ARTIFACT = "Table II"


def run() -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    result = ExperimentResult("tab02", TITLE)
    for index, row in enumerate(TABLE_II):
        try:
            importlib.import_module(row.suite_module)
            ok = 1.0
        except ImportError:  # pragma: no cover - all modules exist
            ok = 0.0
        result.add(
            index,
            ok,
            "importable",
            benchmark=row.benchmark,
            link=row.link,
            module=row.suite_module,
        )
    result.note("every Table II row maps to an implemented suite module")
    return result


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    verified = sum(1 for m in result.measurements if m.value == 1.0)
    lines = [format_table_ii()]
    lines.append(
        f"(registry ↔ implementation: {verified}/{len(result)} rows importable)"
    )
    return "\n".join(lines)

"""Figure 8: bidirectional STREAM copy with remote data placement."""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.stream import remote_stream_points, remote_stream_result
from ..core.experiment import ExperimentResult
from ..core.report import peak_summary, series_table
from ..runner import SimPoint
from ..units import GiB, to_gbps

TITLE = "Bidirectional STREAM copy, remote placement (Figure 8)"
ARTIFACT = "Figure 8"


def sweep_points(
    data_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points.

    The last point is the local-memory reference used in the note."""
    points = remote_stream_points(0, data_gcds, sizes)
    points.append(
        SimPoint.make(
            "fig08",
            "local/0",
            "repro.bench_suites.stream:local_stream_copy",
            gcd=0,
            size=1 * GiB,
        )
    )
    return points


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    data_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    result = remote_stream_result(points[:-1], outputs[:-1], executor_gcd=0)
    result.title = TITLE
    local = outputs[-1]
    result.note(
        f"local-memory reference: {to_gbps(local):.0f} GB/s "
        f"({local / 1.6e12:.0%} of the 1.6 TB/s HBM peak)"
    )
    return result


def run(
    data_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(data_gcds, sizes)
    return merge_outputs(points, [p.execute() for p in points])


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    return "\n".join(
        [
            series_table(result, series_key="data_gcd"),
            "",
            peak_summary(result, "data_gcd"),
            *result.notes,
        ]
    )

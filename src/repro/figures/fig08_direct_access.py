"""Figure 8: bidirectional STREAM copy with remote data placement."""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.stream import local_stream_copy, remote_stream_sweep
from ..core.experiment import ExperimentResult
from ..core.report import peak_summary, series_table
from ..units import GiB, to_gbps

TITLE = "Bidirectional STREAM copy, remote placement (Figure 8)"
ARTIFACT = "Figure 8"


def run(
    data_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    result = remote_stream_sweep(0, data_gcds, sizes)
    result.title = TITLE
    local = local_stream_copy(0, 1 * GiB)
    result.note(
        f"local-memory reference: {to_gbps(local):.0f} GB/s "
        f"({local / 1.6e12:.0%} of the 1.6 TB/s HBM peak)"
    )
    return result


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    return "\n".join(
        [
            series_table(result, series_key="data_gcd"),
            "",
            peak_summary(result, "data_gcd"),
            *result.notes,
        ]
    )

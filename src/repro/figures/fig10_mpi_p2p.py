"""Figure 10: MPI point-to-point bandwidth (OSU, 1 GiB) vs direct P2P.

Three series per destination GCD: MPI with SDMA engines (the default),
MPI with SDMA disabled (blit copy kernels), and the direct
peer-to-peer copy-kernel reference.
"""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.osu import osu_bw
from ..bench_suites.stream import direct_p2p_read
from ..core.experiment import ExperimentResult
from ..core.report import series_table
from ..core.sweep import OSU_P2P_BYTES
from ..units import GiB

TITLE = "MPI p2p bandwidth vs direct P2P, from GCD0 (Figure 10)"
ARTIFACT = "Figure 10"


def run(
    dst_gcds: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    message_bytes: int = OSU_P2P_BYTES,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    result = ExperimentResult("fig10", TITLE)
    for dst in dst_gcds:
        for sdma, label in ((True, "MPI (SDMA)"), (False, "MPI (no SDMA)")):
            bandwidth = osu_bw(
                0, dst, message_bytes=message_bytes, sdma_enabled=sdma
            )
            result.add(dst, bandwidth, "B/s", series=label, dst=dst)
        direct = direct_p2p_read(0, dst, min(message_bytes, 1 * GiB))
        result.add(dst, direct, "B/s", series="direct P2P", dst=dst)
    return result


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    return series_table(
        result,
        series_key="series",
        x_formatter=lambda x: f"GCD0->{int(x)}",
    )

"""Figure 10: MPI point-to-point bandwidth (OSU, 1 GiB) vs direct P2P.

Three series per destination GCD: MPI with SDMA engines (the default),
MPI with SDMA disabled (blit copy kernels), and the direct
peer-to-peer copy-kernel reference.
"""

from __future__ import annotations

from typing import Sequence

from ..core.experiment import ExperimentResult
from ..core.report import series_table
from ..core.sweep import OSU_P2P_BYTES
from ..runner import SimPoint
from ..units import GiB

TITLE = "MPI p2p bandwidth vs direct P2P, from GCD0 (Figure 10)"
ARTIFACT = "Figure 10"


def sweep_points(
    dst_gcds: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    message_bytes: int = OSU_P2P_BYTES,
) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points.

    Three points per destination, in figure order: MPI with SDMA, MPI
    without SDMA, then the direct-P2P copy-kernel reference."""
    points = []
    for dst in dst_gcds:
        for sdma in (True, False):
            points.append(
                SimPoint.make(
                    "fig10",
                    f"mpi/{dst}/{'sdma' if sdma else 'nosdma'}",
                    "repro.bench_suites.osu:osu_bw",
                    src_gcd=0,
                    dst_gcd=dst,
                    message_bytes=message_bytes,
                    sdma_enabled=sdma,
                )
            )
        points.append(
            SimPoint.make(
                "fig10",
                f"direct/{dst}",
                "repro.bench_suites.stream:direct_p2p_read",
                executor_gcd=0,
                peer_gcd=dst,
                size=min(message_bytes, 1 * GiB),
            )
        )
    return points


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    dst_gcds: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    message_bytes: int = OSU_P2P_BYTES,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    result = ExperimentResult("fig10", TITLE)
    for point, bandwidth in zip(points, outputs):
        kwargs = point.kwargs
        if point.label.startswith("direct/"):
            dst, label = kwargs["peer_gcd"], "direct P2P"
        elif kwargs["sdma_enabled"]:
            dst, label = kwargs["dst_gcd"], "MPI (SDMA)"
        else:
            dst, label = kwargs["dst_gcd"], "MPI (no SDMA)"
        result.add(dst, bandwidth, "B/s", series=label, dst=dst)
    return result


def run(
    dst_gcds: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    message_bytes: int = OSU_P2P_BYTES,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(dst_gcds, message_bytes)
    return merge_outputs(points, [p.execute() for p in points])


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    return series_table(
        result,
        series_key="series",
        x_formatter=lambda x: f"GCD0->{int(x)}",
    )

"""Figure 2: peak achieved host-to-device bandwidth per interface.

The maxima of the Figure 3 sweep, presented as the paper's summary
bars: pinned hipMemcpy 28.3 GB/s, managed zero-copy 25.5 GB/s,
pageable below pinned, page migration 2.8 GB/s.
"""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.comm_scope import H2D_INTERFACES, h2d_points, h2d_result
from ..core.experiment import ExperimentResult
from ..core.report import bar_table
from ..runner import SimPoint
from ..topology.link import LinkTier

TITLE = "Peak achieved host-to-device bandwidth (Figure 2)"
ARTIFACT = "Figure 2"


def sweep_points(interfaces: Sequence[str] = H2D_INTERFACES) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points."""
    return h2d_points(interfaces, experiment_id="fig02")


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    interfaces: Sequence[str] = H2D_INTERFACES,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    sweep = h2d_result(points, outputs)
    result = ExperimentResult("fig02", TITLE)
    for interface in interfaces:
        peak = sweep.peak(interface=interface)
        result.add(peak.x, peak.value, "B/s", interface=interface)
    result.note(
        f"theoretical CPU link peak: "
        f"{LinkTier.CPU.peak_unidirectional / 1e9:.0f} GB/s per direction"
    )
    return result


def run(interfaces: Sequence[str] = H2D_INTERFACES) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(interfaces)
    return merge_outputs(points, [p.execute() for p in points], interfaces)


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    theoretical = LinkTier.CPU.peak_unidirectional
    rows = [
        (str(m.meta["interface"]), m.value) for m in result.measurements
    ]
    reference = {label: theoretical for label, _ in rows}
    return bar_table(
        rows, title=TITLE, reference=reference
    )

"""Figure 1: the multi-GPU compute node topology.

Reproduces the node inventory: 8 GCDs on 4 MI250X packages, 4 NUMA
domains, and the Infinity Fabric link census (4 quad + 2 dual +
6 single xGMI bundles + 8 CPU links), and prints the adjacency with
tiers — the textual form of the paper's node diagram.
"""

from __future__ import annotations

from ..core.experiment import ExperimentResult
from ..topology.link import LinkTier
from ..topology.context import resolve_default as resolve_default_topology

TITLE = "Multi-GPU node topology (Figure 1)"
ARTIFACT = "Figure 1"


def run() -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    topology = resolve_default_topology()
    result = ExperimentResult("fig01", TITLE)
    census = topology.link_census()
    for tier in (LinkTier.QUAD, LinkTier.DUAL, LinkTier.SINGLE, LinkTier.CPU):
        result.add(
            tier.peak_unidirectional,
            float(census.get(tier, 0)),
            "links",
            tier=tier.name.lower(),
        )
    for link in topology.xgmi_links():
        result.add(
            link.capacity_per_direction,
            1.0,
            "link",
            tier=f"edge:{link.tier.name.lower()}",
            a=link.a.index,
            b=link.b.index,
        )
    result.note(topology.describe())
    return result


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    lines = [f"# {TITLE}"]
    lines.extend(result.notes)
    lines.append("GCD-GCD bundles (GCDa-GCDb: tier):")
    for m in result.measurements:
        tier = str(m.meta.get("tier", ""))
        if tier.startswith("edge:"):
            lines.append(
                f"  {m.meta['a']}-{m.meta['b']}: {tier.removeprefix('edge:')}"
                f" ({m.x / 1e9:.0f}+{m.x / 1e9:.0f} GB/s)"
            )
    return "\n".join(lines)

"""Per-artifact reproduction drivers: one module per table/figure.

Each module exposes ``run(**params) -> ExperimentResult`` and
``report(result) -> str`` (the paper-style text rendering).  The
:data:`SUITE` registry binds them to experiment ids so
``repro.figures.run("fig06")`` works uniformly — that is what the
``benchmarks/`` harness and the examples call.
"""

from __future__ import annotations

from typing import Any

from ..core.experiment import Experiment, ExperimentResult, ExperimentSuite
from . import (
    fig01_topology,
    fig02_peak_h2d,
    fig03_h2d_sweep,
    fig04_dual_gcd,
    fig05_scaling,
    fig06_p2p_matrix,
    fig07_peer_sweep,
    fig08_direct_access,
    fig09_direct_peak,
    fig10_mpi_p2p,
    fig11_collectives,
    fig12_rccl,
    tab01_memory_apis,
    tab02_benchmarks,
)

_MODULES = {
    "tab01": tab01_memory_apis,
    "tab02": tab02_benchmarks,
    "fig01": fig01_topology,
    "fig02": fig02_peak_h2d,
    "fig03": fig03_h2d_sweep,
    "fig04": fig04_dual_gcd,
    "fig05": fig05_scaling,
    "fig06": fig06_p2p_matrix,
    "fig07": fig07_peer_sweep,
    "fig08": fig08_direct_access,
    "fig09": fig09_direct_peak,
    "fig10": fig10_mpi_p2p,
    "fig11": fig11_collectives,
    "fig12": fig12_rccl,
}

SUITE = ExperimentSuite()
for _eid, _module in _MODULES.items():
    SUITE.register(
        Experiment(
            experiment_id=_eid,
            title=_module.TITLE,
            paper_artifact=_module.ARTIFACT,
            runner=_module.run,
        )
    )


def run(experiment_id: str, **params: Any) -> ExperimentResult:
    """Run one reproduction by id (``"fig06"``, ``"tab01"``, …)."""
    return SUITE.get(experiment_id).run(**params)


def report(experiment_id: str, result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    return _MODULES[experiment_id].report(result)


def run_and_report(experiment_id: str, **params: Any) -> tuple[ExperimentResult, str]:
    """Run an artifact and return ``(result, report text)``."""
    result = run(experiment_id, **params)
    return result, report(experiment_id, result)


def all_ids() -> list[str]:
    """Every reproducible artifact id, sorted."""
    return list(SUITE.ids())


__all__ = ["SUITE", "run", "report", "run_and_report", "all_ids"]

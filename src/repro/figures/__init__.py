"""Per-artifact reproduction drivers: one module per table/figure.

Each module exposes ``run(**params) -> ExperimentResult`` and
``report(result) -> str`` (the paper-style text rendering).  The
:data:`SUITE` registry binds them to experiment ids so
``repro.figures.run("fig06")`` works uniformly — that is what the
``benchmarks/`` harness and the examples call.

Sweep-decomposed artifacts additionally expose
``sweep_points(**params) -> list[SimPoint]`` and
``merge_outputs(points, outputs, **params) -> ExperimentResult`` so the
:class:`~repro.runner.SweepRunner` can fan their measurements out; the
package-level :func:`sweep_points`/:func:`merge_outputs` dispatch to
them, falling back to a single whole-artifact point for drivers that
are not decomposable (fig01 and the tables).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.experiment import Experiment, ExperimentResult, ExperimentSuite
from ..runner import SimPoint
from . import (
    fig01_topology,
    fig02_peak_h2d,
    fig03_h2d_sweep,
    fig04_dual_gcd,
    fig05_scaling,
    fig06_p2p_matrix,
    fig07_peer_sweep,
    fig08_direct_access,
    fig09_direct_peak,
    fig10_mpi_p2p,
    fig11_collectives,
    fig12_rccl,
    tab01_memory_apis,
    tab02_benchmarks,
)

_MODULES = {
    "tab01": tab01_memory_apis,
    "tab02": tab02_benchmarks,
    "fig01": fig01_topology,
    "fig02": fig02_peak_h2d,
    "fig03": fig03_h2d_sweep,
    "fig04": fig04_dual_gcd,
    "fig05": fig05_scaling,
    "fig06": fig06_p2p_matrix,
    "fig07": fig07_peer_sweep,
    "fig08": fig08_direct_access,
    "fig09": fig09_direct_peak,
    "fig10": fig10_mpi_p2p,
    "fig11": fig11_collectives,
    "fig12": fig12_rccl,
}

#: Module-name aliases: ``"fig11_collectives"`` → ``"fig11"``, so CLI
#: commands accept either the registry id or the driver module's name.
_ALIASES = {
    module.__name__.rsplit(".", 1)[-1]: eid
    for eid, module in _MODULES.items()
}


def canonical_id(name: str) -> str:
    """Resolve an artifact name or module-name alias to a registry id.

    Unknown names pass through unchanged so the registry raises its
    usual error (listing the known ids) at lookup time.
    """
    name = name.strip()
    if name in _MODULES:
        return name
    return _ALIASES.get(name, name)


SUITE = ExperimentSuite()
for _eid, _module in _MODULES.items():
    SUITE.register(
        Experiment(
            experiment_id=_eid,
            title=_module.TITLE,
            paper_artifact=_module.ARTIFACT,
            runner=_module.run,
        )
    )


def _module(experiment_id: str):
    SUITE.get(experiment_id)  # raises BenchmarkError listing known ids
    return _MODULES[experiment_id]


def run(experiment_id: str, **params: Any) -> ExperimentResult:
    """Run one reproduction by id (``"fig06"``, ``"tab01"``, …)."""
    return SUITE.get(experiment_id).run(**params)


def run_artifact(artifact_id: str, **params: Any) -> ExperimentResult:
    """Whole-artifact trampoline for non-decomposable sweep points."""
    return run(artifact_id, **params)


def sweep_points(experiment_id: str, **params: Any) -> list[SimPoint]:
    """Decompose an artifact run into independent sim points.

    Artifacts without a sweep decomposition become a single point that
    executes the whole driver."""
    module = _module(experiment_id)
    decompose = getattr(module, "sweep_points", None)
    if decompose is not None:
        return decompose(**params)
    return [
        SimPoint.make(
            experiment_id,
            "all",
            "repro.figures:run_artifact",
            artifact_id=experiment_id,
            **params,
        )
    ]


def merge_outputs(
    experiment_id: str,
    points: Sequence[SimPoint],
    outputs: Sequence[Any],
    **params: Any,
) -> ExperimentResult:
    """Assemble an artifact result from its point outputs (in order)."""
    module = _module(experiment_id)
    merge = getattr(module, "merge_outputs", None)
    if merge is not None:
        return merge(points, outputs, **params)
    return outputs[0]


def report(experiment_id: str, result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    return _module(experiment_id).report(result)


def run_and_report(experiment_id: str, **params: Any) -> tuple[ExperimentResult, str]:
    """Run an artifact and return ``(result, report text)``."""
    result = run(experiment_id, **params)
    return result, report(experiment_id, result)


def all_ids() -> list[str]:
    """Every reproducible artifact id, sorted."""
    return list(SUITE.ids())


__all__ = [
    "SUITE",
    "canonical_id",
    "run",
    "sweep_points",
    "merge_outputs",
    "report",
    "run_and_report",
    "all_ids",
]

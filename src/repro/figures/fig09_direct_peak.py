"""Figure 9: peak bidirectional direct-access bandwidth + utilization.

The maxima of the Figure 8 sweep against the theoretical bidirectional
link peaks — the paper reports 43–44 % for all three tiers.
"""

from __future__ import annotations

from typing import Sequence

from ..core.experiment import ExperimentResult
from ..core.report import bar_table
from ..runner import SimPoint
from ..topology.context import resolve_default as resolve_default_topology
from ..units import GiB

TITLE = "Peak bidirectional direct-access bandwidth (Figure 9)"
ARTIFACT = "Figure 9"


def sweep_points(
    data_gcds: Sequence[int] = (1, 2, 6), size: int = 4 * GiB
) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points."""
    return [
        SimPoint.make(
            "fig09",
            f"direct/{data_gcd}",
            "repro.bench_suites.stream:remote_stream_copy",
            executor_gcd=0,
            data_gcd=data_gcd,
            size=size,
        )
        for data_gcd in data_gcds
    ]


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    data_gcds: Sequence[int] = (1, 2, 6),
    size: int = 4 * GiB,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    topology = resolve_default_topology()
    result = ExperimentResult("fig09", TITLE)
    for point, bandwidth in zip(points, outputs):
        data_gcd = point.kwargs["data_gcd"]
        tier = topology.peer_tier(0, data_gcd)
        assert tier is not None
        result.add(
            data_gcd,
            bandwidth,
            "B/s",
            data_gcd=data_gcd,
            tier=tier.name.lower(),
            theoretical=tier.peak_bidirectional,
        )
    return result


def run(
    data_gcds: Sequence[int] = (1, 2, 6), size: int = 4 * GiB
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(data_gcds, size)
    return merge_outputs(points, [p.execute() for p in points])


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    rows = []
    reference = {}
    for m in result.measurements:
        label = f"GCD0 <-> GCD{m.meta['data_gcd']} ({m.meta['tier']})"
        rows.append((label, m.value))
        reference[label] = m.meta["theoretical"]
    return bar_table(rows, title=TITLE, reference=reference)

"""Figure 9: peak bidirectional direct-access bandwidth + utilization.

The maxima of the Figure 8 sweep against the theoretical bidirectional
link peaks — the paper reports 43–44 % for all three tiers.
"""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.stream import remote_stream_copy
from ..core.experiment import ExperimentResult
from ..core.report import bar_table
from ..topology.presets import frontier_node
from ..units import GiB

TITLE = "Peak bidirectional direct-access bandwidth (Figure 9)"
ARTIFACT = "Figure 9"


def run(
    data_gcds: Sequence[int] = (1, 2, 6), size: int = 4 * GiB
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    topology = frontier_node()
    result = ExperimentResult("fig09", TITLE)
    for data_gcd in data_gcds:
        bandwidth = remote_stream_copy(0, data_gcd, size)
        tier = topology.peer_tier(0, data_gcd)
        assert tier is not None
        result.add(
            data_gcd,
            bandwidth,
            "B/s",
            data_gcd=data_gcd,
            tier=tier.name.lower(),
            theoretical=tier.peak_bidirectional,
        )
    return result


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    rows = []
    reference = {}
    for m in result.measurements:
        label = f"GCD0 <-> GCD{m.meta['data_gcd']} ({m.meta['tier']})"
        rows.append((label, m.value))
        reference[label] = m.meta["theoretical"]
    return bar_table(rows, title=TITLE, reference=reference)

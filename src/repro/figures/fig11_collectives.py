"""Figure 11: five collectives, MPI vs RCCL, 2–8 partners, 1 MiB."""

from __future__ import annotations

from typing import Sequence

from ..core.experiment import ExperimentResult
from ..core.report import latency_table
from ..core.sweep import OSU_COLLECTIVE_BYTES, PARTNER_COUNTS
from ..mpi.collectives import COLLECTIVES
from ..runner import SimPoint

TITLE = "Collective latency, MPI vs RCCL (Figure 11)"
ARTIFACT = "Figure 11"

#: Panel order as in the paper: (a) Reduce … (e) AllGather.
PANEL_ORDER = ("reduce", "broadcast", "allreduce", "reduce_scatter", "allgather")


def sweep_points(
    collectives: Sequence[str] = PANEL_ORDER,
    partner_counts: Sequence[int] = PARTNER_COUNTS,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points.

    MPI and RCCL points interleave per (collective, partners) cell, in
    figure order."""
    points = []
    for collective in collectives:
        if collective not in COLLECTIVES:
            raise KeyError(f"unknown collective {collective!r}")
        for partners in partner_counts:
            points.append(
                SimPoint.make(
                    "fig11",
                    f"mpi/{collective}/{partners}",
                    "repro.bench_suites.osu:osu_collective_latency",
                    collective=collective,
                    num_partners=partners,
                    message_bytes=message_bytes,
                )
            )
            points.append(
                SimPoint.make(
                    "fig11",
                    f"rccl/{collective}/{partners}",
                    "repro.bench_suites.rccl_tests:rccl_collective_latency",
                    collective=collective,
                    num_threads=partners,
                    message_bytes=message_bytes,
                )
            )
    return points


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    collectives: Sequence[str] = PANEL_ORDER,
    partner_counts: Sequence[int] = PARTNER_COUNTS,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    result = ExperimentResult("fig11", TITLE)
    for point, latency in zip(points, outputs):
        kwargs = point.kwargs
        if point.label.startswith("mpi/"):
            partners, library = kwargs["num_partners"], "MPI"
        else:
            partners, library = kwargs["num_threads"], "RCCL"
        result.add(
            partners,
            latency,
            "s",
            collective=kwargs["collective"],
            partners=partners,
            library=library,
        )
    return result


def run(
    collectives: Sequence[str] = PANEL_ORDER,
    partner_counts: Sequence[int] = PARTNER_COUNTS,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(collectives, partner_counts, message_bytes)
    return merge_outputs(points, [p.execute() for p in points])


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    parts = []
    for collective in PANEL_ORDER:
        sub = ExperimentResult("fig11", f"{collective} latency (1 MiB)")
        sub.measurements = result.series(collective=collective)
        if sub.measurements:
            parts.append(latency_table(sub))
            parts.append("")
    return "\n".join(parts).rstrip()

"""Figure 11: five collectives, MPI vs RCCL, 2–8 partners, 1 MiB."""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.osu import osu_collective_latency
from ..bench_suites.rccl_tests import rccl_collective_latency
from ..core.experiment import ExperimentResult
from ..core.report import latency_table
from ..core.sweep import OSU_COLLECTIVE_BYTES, PARTNER_COUNTS
from ..mpi.collectives import COLLECTIVES

TITLE = "Collective latency, MPI vs RCCL (Figure 11)"
ARTIFACT = "Figure 11"

#: Panel order as in the paper: (a) Reduce … (e) AllGather.
PANEL_ORDER = ("reduce", "broadcast", "allreduce", "reduce_scatter", "allgather")


def run(
    collectives: Sequence[str] = PANEL_ORDER,
    partner_counts: Sequence[int] = PARTNER_COUNTS,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    result = ExperimentResult("fig11", TITLE)
    for collective in collectives:
        if collective not in COLLECTIVES:
            raise KeyError(f"unknown collective {collective!r}")
        for partners in partner_counts:
            mpi = osu_collective_latency(
                collective, partners, message_bytes=message_bytes
            )
            result.add(
                partners,
                mpi,
                "s",
                collective=collective,
                partners=partners,
                library="MPI",
            )
            rccl = rccl_collective_latency(
                collective, partners, message_bytes=message_bytes
            )
            result.add(
                partners,
                rccl,
                "s",
                collective=collective,
                partners=partners,
                library="RCCL",
            )
    return result


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    parts = []
    for collective in PANEL_ORDER:
        sub = ExperimentResult("fig11", f"{collective} latency (1 MiB)")
        sub.measurements = result.series(collective=collective)
        if sub.measurements:
            parts.append(latency_table(sub))
            parts.append("")
    return "\n".join(parts).rstrip()

"""Figure 5: CPU-GPU STREAM scaling from one to eight GCDs (spread)."""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.stream import scaling_points, scaling_result
from ..core.bounds import cpu_gpu_peak_bidirectional
from ..core.experiment import ExperimentResult
from ..core.report import bar_table
from ..core.sweep import MULTI_GPU_STREAM_BYTES, SCALING_GCD_COUNTS
from ..runner import SimPoint
from ..topology.context import resolve_default as resolve_default_topology

TITLE = "CPU-GPU STREAM scaling, spread placement (Figure 5)"
ARTIFACT = "Figure 5"


def sweep_points(
    gcd_counts: Sequence[int] = SCALING_GCD_COUNTS,
    size: int = MULTI_GPU_STREAM_BYTES,
) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points."""
    return scaling_points(gcd_counts, size)


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    gcd_counts: Sequence[int] = SCALING_GCD_COUNTS,
    size: int = MULTI_GPU_STREAM_BYTES,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    result = scaling_result(points, outputs)
    result.title = TITLE
    return result


def run(
    gcd_counts: Sequence[int] = SCALING_GCD_COUNTS,
    size: int = MULTI_GPU_STREAM_BYTES,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(gcd_counts, size)
    return merge_outputs(points, [p.execute() for p in points])


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    topology = resolve_default_topology()
    rows = []
    reference = {}
    for m in result.measurements:
        label = f"{int(m.x)} GCD(s)"
        rows.append((label, m.value))
        reference[label] = cpu_gpu_peak_bidirectional(
            topology, m.meta["placement"]
        )
    return bar_table(rows, title=TITLE, reference=reference)

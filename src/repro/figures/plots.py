"""ASCII-chart renderings of the figure results (CLI ``--plot``).

Maps artifact ids to chart builders over their
:class:`~repro.core.experiment.ExperimentResult`.  Artifacts without a
natural chart (the tables, fig01) simply have no entry.
"""

from __future__ import annotations

from typing import Callable

from ..core.experiment import ExperimentResult
from ..core.plot import ascii_bars, ascii_heatmap, ascii_series
from ..units import to_gbps, to_us


def _series_chart(result: ExperimentResult, key: str) -> str:
    labels = result.labels(key)
    xs = sorted({m.x for m in result.measurements})
    series = {}
    for label in labels:
        by_x = {m.x: to_gbps(m.value) for m in result.series(**{key: label})}
        series[str(label)] = [by_x.get(x, float("nan")) for x in xs]
    return ascii_series(xs, series, y_label="GB/s")


def _bar_chart(result: ExperimentResult, key: str) -> str:
    rows = {}
    for m in result.measurements:
        rows[str(m.meta[key])] = m.value
    return ascii_bars(rows)


def _fig06_heatmaps(result: ExperimentResult) -> str:
    latency = {
        (m.meta["src"], m.meta["dst"]): to_us(m.value)
        for m in result.series(panel="b")
    }
    bandwidth = {
        (m.meta["src"], m.meta["dst"]): to_gbps(m.value)
        for m in result.series(panel="c")
    }
    return "\n".join(
        [
            "latency [us] (darker = slower):",
            ascii_heatmap(latency),
            "",
            "bandwidth [GB/s] (darker = faster):",
            ascii_heatmap(bandwidth),
        ]
    )


def _collective_chart(result: ExperimentResult) -> str:
    xs = sorted({float(m.meta["partners"]) for m in result.measurements})
    series: dict[str, list[float]] = {}
    for m in result.measurements:
        collective = m.meta.get("collective", "latency")
        library = m.meta.get("library", "")
        name = f"{collective}/{library}" if library else str(collective)
        series.setdefault(name, [float("nan")] * len(xs))
        series[name][xs.index(float(m.meta["partners"]))] = to_us(m.value)
    # Keep at most 8 series (glyph limit): prefer allreduce + broadcast.
    if len(series) > 8:
        keep = [
            n
            for n in series
            if n.startswith(("allreduce", "broadcast", "reduce/"))
        ][:8]
        series = {n: series[n] for n in keep}
    return ascii_series(xs, series, log_x=False, y_label="us")


PLOTTERS: dict[str, Callable[[ExperimentResult], str]] = {
    "fig02": lambda r: _bar_chart(r, "interface"),
    "fig03": lambda r: _series_chart(r, "interface"),
    "fig04": lambda r: _bar_chart(r, "case"),
    "fig05": lambda r: ascii_bars(
        {f"{int(m.x)} GCDs": m.value for m in r.measurements}
    ),
    "fig06": _fig06_heatmaps,
    "fig07": lambda r: _series_chart(r, "dst"),
    "fig08": lambda r: _series_chart(r, "data_gcd"),
    "fig09": lambda r: ascii_bars(
        {f"GCD0<->{m.meta['data_gcd']}": m.value for m in r.measurements}
    ),
    "fig10": lambda r: _series_chart(r, "series"),
    "fig11": _collective_chart,
    "fig12": _collective_chart,
}


def plot(artifact_id: str, result: ExperimentResult) -> str | None:
    """ASCII chart for an artifact, or ``None`` if it has no chart."""
    plotter = PLOTTERS.get(artifact_id)
    if plotter is None:
        return None
    return plotter(result)

"""Figure 3: host-to-device bandwidth vs transfer size.

CommScope sweep, 4 KiB – 1 GiB, four interfaces: explicit copies from
pageable and pinned memory, managed-memory zero-copy, and managed-
memory page migration (XNACK).
"""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.comm_scope import H2D_INTERFACES, h2d_points, h2d_result
from ..core.experiment import ExperimentResult
from ..core.report import peak_summary, series_table
from ..runner import SimPoint

TITLE = "Host-to-device bandwidth vs transfer size (Figure 3)"
ARTIFACT = "Figure 3"


def sweep_points(
    interfaces: Sequence[str] = H2D_INTERFACES,
    sizes: Sequence[int] | None = None,
) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points."""
    return h2d_points(interfaces, sizes, experiment_id="fig03")


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    interfaces: Sequence[str] = H2D_INTERFACES,
    sizes: Sequence[int] | None = None,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    result = h2d_result(points, outputs)
    result.title = TITLE
    return result


def run(
    interfaces: Sequence[str] = H2D_INTERFACES,
    sizes: Sequence[int] | None = None,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(interfaces, sizes)
    return merge_outputs(points, [p.execute() for p in points])


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    return "\n".join(
        [
            series_table(result, series_key="interface"),
            "",
            peak_summary(result, "interface"),
        ]
    )

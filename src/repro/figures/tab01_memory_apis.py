"""Table I: HIP memory allocation methods.

The reproduction validates that every row of the registry is an
allocation path the simulated runtime actually implements (allocating
a buffer of each kind and checking its coherence), then prints the
table.
"""

from __future__ import annotations

from ..core.experiment import ExperimentResult
from ..core.registry import TABLE_I, format_table_i
from ..hip.enums import HostMallocFlags
from ..memory.buffer import MemoryKind
from ..memory.coherence import is_coherent
from ..session import Session
from ..units import MiB

TITLE = "Memory allocation methods in HIP (Table I)"
ARTIFACT = "Table I"


def run() -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    result = ExperimentResult("tab01", TITLE)
    hip = Session().hip
    hip.set_device(0)
    for index, row in enumerate(TABLE_I):
        if row.kind is MemoryKind.DEVICE:  # pragma: no cover - not in table
            buffer = hip.malloc(1 * MiB)
        elif row.kind is MemoryKind.PINNED_NONCOHERENT:
            buffer = hip.host_malloc(1 * MiB, HostMallocFlags.NON_COHERENT)
        elif row.kind is MemoryKind.PINNED_COHERENT:
            buffer = hip.host_malloc(1 * MiB)
        elif row.kind is MemoryKind.PAGEABLE:
            buffer = hip.pageable_malloc(1 * MiB)
        else:
            buffer = hip.malloc_managed(1 * MiB)
        coherent = is_coherent(buffer.kind)
        result.add(
            index,
            1.0 if coherent == row.coherent else 0.0,
            "match",
            memory=row.memory,
            movement=row.data_movement,
            kind=buffer.kind.value,
        )
        hip.free(buffer)
    result.note("all registry rows allocate and match declared coherence")
    return result


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    mismatches = [m for m in result.measurements if m.value != 1.0]
    lines = [format_table_i()]
    lines.append(
        f"(registry ↔ implementation: {len(result) - len(mismatches)}/"
        f"{len(result)} rows verified)"
    )
    return "\n".join(lines)

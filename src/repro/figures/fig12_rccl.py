"""Figure 12: RCCL collective latency with two to eight CPU threads."""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.rccl_tests import rccl_points, rccl_result
from ..core.bounds import collective_latency_bound
from ..core.experiment import ExperimentResult
from ..core.report import latency_table
from ..core.sweep import OSU_COLLECTIVE_BYTES, PARTNER_COUNTS
from ..runner import SimPoint

TITLE = "RCCL collective latency, 2-8 threads (Figure 12)"
ARTIFACT = "Figure 12"


def sweep_points(
    collectives: Sequence[str] | None = None,
    thread_counts: Sequence[int] = PARTNER_COUNTS,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points."""
    return rccl_points(
        collectives, thread_counts, message_bytes=message_bytes
    )


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    collectives: Sequence[str] | None = None,
    thread_counts: Sequence[int] = PARTNER_COUNTS,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    result = rccl_result(points, outputs, experiment_id="fig12", title=TITLE)
    for name in ("reduce", "broadcast", "allreduce", "reduce_scatter", "allgather"):
        result.note(collective_latency_bound(name).describe())
    return result


def run(
    collectives: Sequence[str] | None = None,
    thread_counts: Sequence[int] = PARTNER_COUNTS,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(collectives, thread_counts, message_bytes)
    return merge_outputs(points, [p.execute() for p in points])


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    sub = ExperimentResult("fig12", result.title)
    sub.measurements = result.measurements
    return "\n".join(
        [
            latency_table(sub, row_key="partners", col_key="collective"),
            "",
            "analytical lower bounds (paper §VI):",
            *(f"  {note}" for note in result.notes),
        ]
    )

"""Figure 7: hipMemcpyPeer bandwidth vs size, GCD0 → adjacent GCDs."""

from __future__ import annotations

from typing import Sequence

from ..bench_suites.comm_scope import peer_points, peer_result
from ..core.experiment import ExperimentResult
from ..core.report import peak_summary, series_table
from ..runner import SimPoint
from ..topology.context import resolve_default as resolve_default_topology

TITLE = "hipMemcpyPeer bandwidth from GCD0 to adjacent GCDs (Figure 7)"
ARTIFACT = "Figure 7"


def sweep_points(
    dst_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
) -> list[SimPoint]:
    """Decompose the reproduction into independent sim points."""
    return peer_points(0, dst_gcds, sizes)


def merge_outputs(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    dst_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
) -> ExperimentResult:
    """Assemble the figure result from point outputs (in order)."""
    result = peer_result(points, outputs, src_gcd=0)
    result.title = TITLE
    topology = resolve_default_topology()
    for dst in dst_gcds:
        tier = topology.peer_tier(0, dst)
        if tier is not None:
            result.note(
                f"GCD0-GCD{dst}: {tier.name.lower()} link, theoretical "
                f"{tier.peak_unidirectional / 1e9:.0f} GB/s per direction"
            )
    return result


def run(
    dst_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
) -> ExperimentResult:
    """Run the reproduction; returns its :class:`ExperimentResult`."""
    points = sweep_points(dst_gcds, sizes)
    return merge_outputs(points, [p.execute() for p in points], dst_gcds)


def report(result: ExperimentResult) -> str:
    """Paper-style text rendering of a result."""
    return "\n".join(
        [
            series_table(result, series_key="dst"),
            "",
            peak_summary(result, "dst"),
            *result.notes,
        ]
    )

"""Declarative fault scenarios.

A :class:`FaultScenario` is a picklable, content-addressable list of
timed fault events — link degradations and failures, SDMA engine
stalls, page-migration storms — that a
:class:`~repro.faults.injector.FaultInjector` replays against a live
:class:`~repro.hardware.node.HardwareNode` off the simulation clock.

The motivation follows the paper's central observation: achievable
bandwidth is determined by *which* links a transfer crosses, so a
degraded or failed Infinity Fabric link reshapes every bandwidth tier.
Real MI250X nodes already show link-level asymmetry (Pearson,
arXiv:2302.14827); a scenario makes that a first-class simulator input.

Scenarios are plain data.  ``Session(faults=scenario)``,
``repro inject --scenario chaos.json`` and
``SweepRunner(faults=scenario)`` all accept the same object, and
:meth:`FaultScenario.fingerprint` folds it into the result-cache key so
faulty and healthy runs never collide.

JSON schema (``FaultScenario.load``/``dump``)::

    {
      "name": "degrade-xgmi",
      "events": [
        {"kind": "link_degrade", "link": "1-3", "factor": 0.5, "at": 0.0},
        {"kind": "link_fail", "link": "gcd1-gcd3:single",
         "at": 0.002, "until": 0.004},
        {"kind": "sdma_stall", "engine": "gcd0:out",
         "at": 0.0, "duration": 0.001},
        {"kind": "page_migration_storm", "numa": 0,
         "at": 0.0, "rate": 2.0e10, "duration": 0.001}
      ]
    }

Link specs accept a bare GCD pair (``"1-3"``), endpoint names
(``"gcd1-gcd3"``, ``"gcd0-numa0"``), or an exact
:attr:`~repro.topology.link.Link.name` (``"gcd1-gcd3:single"``).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Iterable, Mapping, Union

from ..errors import ConfigurationError

#: Bumped when the canonical scenario encoding itself changes.
SCENARIO_SCHEMA = "repro-faults/1"


def _check_time(value: float, what: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{what} must be a number, not {value!r}")
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"{what} must be finite and >= 0, got {value!r}")


@dataclass(frozen=True)
class LinkDegrade:
    """Scale a link's per-direction capacity to ``factor`` × healthy.

    ``factor`` is relative to the link's *healthy* capacity, not its
    current one, so repeated degrades do not compound and
    ``factor=1.0`` restores full health.  In-flight flows crossing the
    link are re-leveled at the event time.
    """

    link: str
    factor: float
    at: float

    kind = "link_degrade"

    def __post_init__(self) -> None:
        if not isinstance(self.link, str) or not self.link:
            raise ConfigurationError(f"link spec must be a string, got {self.link!r}")
        if not (0.0 < self.factor <= 1.0):
            raise ConfigurationError(
                f"degrade factor must be in (0, 1], got {self.factor!r}"
            )
        _check_time(self.at, "event time 'at'")


@dataclass(frozen=True)
class LinkFail:
    """Fail a link at ``at`` (capacity 0 both directions).

    Every in-flight flow crossing the link fails with
    :class:`~repro.errors.LinkDownError`; new transfers requesting it
    raise the same error up front, which the MPI/RCCL retry and
    reroute machinery turns into backoff + failover.  With ``until``
    set, the link heals (full capacity) at that time.
    """

    link: str
    at: float
    until: "float | None" = None

    kind = "link_fail"

    def __post_init__(self) -> None:
        if not isinstance(self.link, str) or not self.link:
            raise ConfigurationError(f"link spec must be a string, got {self.link!r}")
        _check_time(self.at, "event time 'at'")
        if self.until is not None:
            _check_time(self.until, "heal time 'until'")
            if self.until <= self.at:
                raise ConfigurationError(
                    f"heal time {self.until!r} must be after failure at {self.at!r}"
                )


@dataclass(frozen=True)
class SdmaStall:
    """Stall an SDMA engine for ``duration`` seconds from ``at``.

    ``engine`` names one direction of one GCD's engine pair —
    ``"gcd0:out"`` / ``"gcd0:in"`` — or ``"gcd0"`` for both.  While
    stalled, *new* copies plan onto the opposite-direction engine at
    :data:`~repro.hardware.sdma.SDMA_FALLBACK_EFFICIENCY`; copies
    already in flight on the stalled engine drain undisturbed (the
    stall gates queue submission, not the fabric).
    """

    engine: str
    at: float
    duration: float

    kind = "sdma_stall"

    def __post_init__(self) -> None:
        if not isinstance(self.engine, str) or not self.engine:
            raise ConfigurationError(
                f"engine spec must be a string, got {self.engine!r}"
            )
        _check_time(self.at, "event time 'at'")
        _check_time(self.duration, "stall duration")
        if self.duration <= 0:
            raise ConfigurationError(
                f"stall duration must be positive, got {self.duration!r}"
            )


@dataclass(frozen=True)
class PageMigrationStorm:
    """Steal ``rate`` bytes/s of a NUMA domain's DRAM bandwidth.

    Models a burst of kernel page-migration traffic contending on the
    ``("dram", numa)`` channel: its capacity drops by ``rate`` for
    ``duration`` seconds (``inf`` = until the end of the run).  The
    stolen rate must stay below the domain's DRAM bandwidth.
    """

    numa: int
    at: float
    rate: float
    duration: float = math.inf

    kind = "page_migration_storm"

    def __post_init__(self) -> None:
        if not isinstance(self.numa, int) or isinstance(self.numa, bool) or self.numa < 0:
            raise ConfigurationError(
                f"numa index must be a non-negative int, got {self.numa!r}"
            )
        _check_time(self.at, "event time 'at'")
        if not isinstance(self.rate, (int, float)) or self.rate <= 0 or not math.isfinite(self.rate):
            raise ConfigurationError(
                f"storm rate must be finite and positive, got {self.rate!r}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"storm duration must be positive, got {self.duration!r}"
            )


FaultEvent = Union[LinkDegrade, LinkFail, SdmaStall, PageMigrationStorm]

_EVENT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (LinkDegrade, LinkFail, SdmaStall, PageMigrationStorm)
}


def _event_to_json(event: FaultEvent) -> dict[str, Any]:
    payload: dict[str, Any] = {"kind": event.kind}
    for spec in fields(event):
        value = getattr(event, spec.name)
        if value is None:
            continue
        # Value check, not identity: an unpickled inf is a different
        # float object, and the fingerprint must survive pickling.
        if isinstance(value, float) and math.isinf(value):
            value = "inf"
        payload[spec.name] = value
    return payload


def _event_from_json(payload: Mapping[str, Any]) -> FaultEvent:
    if not isinstance(payload, Mapping):
        raise ConfigurationError(f"fault event must be an object, got {payload!r}")
    kind = payload.get("kind")
    cls = _EVENT_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown fault event kind {kind!r}; "
            f"known kinds: {sorted(_EVENT_KINDS)}"
        )
    kwargs = {k: v for k, v in payload.items() if k != "kind"}
    names = {spec.name for spec in fields(cls)}
    unknown = set(kwargs) - names
    if unknown:
        raise ConfigurationError(
            f"{kind} event has unknown fields {sorted(unknown)}"
        )
    for key, value in kwargs.items():
        if value == "inf":
            kwargs[key] = math.inf
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad {kind} event: {exc}") from None


@dataclass(frozen=True)
class FaultScenario:
    """An ordered set of timed fault events plus a display name.

    Events fire in ``at`` order; ties fire in listing order (the
    injector schedules them in listing order and the engine breaks
    same-time ties FIFO).  The scenario itself is immutable, picklable
    (it crosses process-pool boundaries in fault-sensitivity sweeps)
    and content-addressable via :meth:`fingerprint`.
    """

    events: "tuple[FaultEvent, ...]" = ()
    name: str = "scenario"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if type(event) not in _EVENT_KINDS.values():
                raise ConfigurationError(
                    f"not a fault event: {event!r} "
                    f"(expected one of {sorted(_EVENT_KINDS)})"
                )
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(f"scenario name must be a non-empty string")

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def fingerprint(self) -> str:
        """Content hash (SHA-256 hex) of the scenario's *behaviour*.

        Covers the schema version and every event field; excludes
        ``name``, which is display metadata — two scenarios with
        identical events produce identical simulations and may share
        cache entries.  This is the hook
        :func:`repro.runner.canonical_token` dispatches on, which is
        how a scenario folds into the result-cache key.
        """
        payload = json.dumps(
            [SCENARIO_SCHEMA, [_event_to_json(e) for e in self.events]],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- (de)serialization ---------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """Plain-dict rendering matching the documented JSON schema."""
        return {
            "name": self.name,
            "events": [_event_to_json(e) for e in self.events],
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "FaultScenario":
        """Parse the documented JSON schema; raises ConfigurationError."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"scenario must be a JSON object, got {type(payload).__name__}"
            )
        events_raw = payload.get("events", [])
        if not isinstance(events_raw, (list, tuple)):
            raise ConfigurationError("scenario 'events' must be a list")
        return cls(
            events=tuple(_event_from_json(item) for item in events_raw),
            name=payload.get("name", "scenario"),
        )

    @classmethod
    def load(cls, path: "str | Path") -> "FaultScenario":
        """Read a scenario from a JSON file."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ConfigurationError(f"cannot read scenario {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"scenario {path} is not valid JSON: {exc}") from None
        scenario = cls.from_json(payload)
        if "name" not in payload:
            scenario = cls(events=scenario.events, name=path.stem)
        return scenario

    def dump(self, path: "str | Path") -> None:
        """Write the scenario to a JSON file (pretty-printed)."""
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")

    def describe(self) -> str:
        """One line per event, in firing order."""
        lines = [f"scenario {self.name!r} ({len(self.events)} events)"]
        for event in sorted(self.events, key=lambda e: e.at):
            lines.append(f"  t={event.at:g}s {_event_to_json(event)}")
        return "\n".join(lines)

"""Retry/backoff policy shared by the MPI and RCCL robustness layers.

A :class:`RetryPolicy` is plain data: how many attempts a communication
step gets and how the backoff between them grows.  The communication
layers own the retry *loops* (they know what "one attempt" means and
what recovery — reroute, ring rebuild — to try between attempts); the
policy only answers "again?" and "after how long?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget for one communication step.

    ``max_attempts`` counts the first try: 1 means fail fast (no
    retries).  After failed attempt *k* (1-based, ``k < max_attempts``)
    the caller backs off ``delay(k) = base_delay × multiplier^(k-1)``
    simulated seconds before attempt *k + 1*.
    """

    max_attempts: int = 3
    base_delay: float = 10e-6
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be an int >= 1, got {self.max_attempts!r}"
            )
        if not math.isfinite(self.base_delay) or self.base_delay < 0:
            raise ConfigurationError(
                f"base_delay must be finite and >= 0, got {self.base_delay!r}"
            )
        if not math.isfinite(self.multiplier) or self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be finite and >= 1, got {self.multiplier!r}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff (seconds) after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt numbers are 1-based, got {attempt}")
        return self.base_delay * self.multiplier ** (attempt - 1)

    def allows_retry(self, attempt: int) -> bool:
        """Whether another attempt is allowed after failed ``attempt``."""
        return attempt < self.max_attempts


#: Fail-fast default: one attempt, no backoff — the pre-fault-injection
#: behaviour, and the default everywhere a policy is optional.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, multiplier=1.0)

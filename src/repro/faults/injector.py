"""Replays a :class:`FaultScenario` against a live hardware node.

The :class:`FaultInjector` resolves every event target (link, SDMA
engine, NUMA domain) against the node's topology up front — a typo'd
scenario fails at construction, not minutes into a run — then arms one
engine timer per event.  Timers fire in ``at`` order with listing-order
FIFO tie-breaks, so faulted runs stay bit-deterministic.

Event semantics (see the event classes for detail):

- ``LinkDegrade`` → :meth:`FlowNetwork.set_capacity` on both
  directional channels to ``factor × healthy``, plus a blame alias so
  ``repro explain`` attributes time frozen on the link to
  ``fault:link-degrade:<lo>-><hi>``.
- ``LinkFail`` → capacity 0 (in-flight flows fail with
  :class:`~repro.errors.LinkDownError`), the link is recorded in
  :meth:`HardwareNode.failed_links` for reroute decisions, and with
  ``until`` a heal timer restores it.
- ``SdmaStall`` → :meth:`SdmaEngines.stall`; new copies fall back to
  the opposite-direction engine at a modeled penalty until the stall
  clears.
- ``PageMigrationStorm`` → the NUMA domain's DRAM channel loses
  ``rate`` bytes/s of capacity for the duration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from ..errors import ConfigurationError, SimulationError
from ..topology.link import Link, LinkEndpoint
from .scenario import (
    FaultScenario,
    LinkDegrade,
    LinkFail,
    PageMigrationStorm,
    SdmaStall,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hardware.node import HardwareNode


def _parse_endpoint(token: str) -> LinkEndpoint:
    token = token.strip()
    if token.startswith("gcd"):
        body, kind = token[3:], "gcd"
    elif token.startswith("numa"):
        body, kind = token[4:], "numa"
    else:
        body, kind = token, "gcd"
    try:
        index = int(body)
    except ValueError:
        raise ConfigurationError(f"bad link endpoint {token!r}") from None
    return LinkEndpoint(kind, index)


def resolve_link(topology: "object", spec: str) -> Link:
    """Resolve a scenario link spec to a topology :class:`Link`.

    Accepts an exact :attr:`Link.name` (``"gcd1-gcd3:single"``), an
    endpoint pair (``"gcd1-gcd3"``, ``"gcd0-numa0"``), or a bare GCD
    pair (``"1-3"``).
    """
    links = list(topology.links())
    for link in links:
        if link.name == spec:
            return link
    head, sep, _ = spec.partition(":")
    parts = head.split("-")
    if sep == "" and len(parts) == 2:
        a, b = _parse_endpoint(parts[0]), _parse_endpoint(parts[1])
        link = topology.link_between(a, b)
        if link is not None:
            return link
    known = ", ".join(link.name for link in links)
    raise ConfigurationError(
        f"scenario references unknown link {spec!r}; known links: {known}"
    )


def _parse_engine(spec: str) -> "tuple[int, tuple[bool, ...]]":
    """``"gcd0:out"`` → ``(0, (True,))``; bare ``"gcd0"`` stalls both."""
    head, sep, direction = spec.partition(":")
    token = head.strip()
    if token.startswith("gcd"):
        token = token[3:]
    try:
        gcd = int(token)
    except ValueError:
        raise ConfigurationError(f"bad SDMA engine spec {spec!r}") from None
    if not sep:
        return gcd, (True, False)
    direction = direction.strip().lower()
    if direction in ("out", "egress"):
        return gcd, (True,)
    if direction in ("in", "ingress"):
        return gcd, (False,)
    raise ConfigurationError(
        f"bad SDMA engine direction {direction!r} in {spec!r} "
        "(expected 'in' or 'out')"
    )


def _endpoint_label(endpoint: LinkEndpoint) -> str:
    return str(endpoint.index) if endpoint.is_gcd else str(endpoint)


class FaultInjector:
    """Arms a scenario's events on a node's simulation clock."""

    def __init__(self, node: "HardwareNode", scenario: FaultScenario) -> None:
        self.node = node
        self.scenario = scenario
        self._armed = False
        #: Healthy capacity of every channel this injector touched,
        #: keyed by channel id — the restore target for heal events.
        self._healthy: dict[Hashable, float] = {}
        self._validate()

    # -- validation (construction time) --------------------------------------

    def _validate(self) -> None:
        topology = self.node.topology
        for event in self.scenario.events:
            if isinstance(event, (LinkDegrade, LinkFail)):
                resolve_link(topology, event.link)
            elif isinstance(event, SdmaStall):
                gcd, _ = _parse_engine(event.engine)
                self.node.gcd(gcd)  # raises TopologyError when absent
            elif isinstance(event, PageMigrationStorm):
                channel = self.node.cpu.dram_channel(event.numa)
                healthy = self.node.network.channel(channel).capacity
                if event.rate >= healthy:
                    raise ConfigurationError(
                        f"page-migration storm rate {event.rate:g} B/s would "
                        f"exceed NUMA {event.numa}'s DRAM bandwidth "
                        f"({healthy:g} B/s)"
                    )

    # -- arming ---------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every event (and its heal, if any) on the engine.

        Events are scheduled in listing order, so same-time events fire
        in listing order (engine FIFO tie-break) — scenario replay is
        deterministic.
        """
        if self._armed:
            raise SimulationError("fault injector is already armed")
        self._armed = True
        engine = self.node.engine
        now = engine.now
        for event in self.scenario.events:
            if event.at < now:
                raise ConfigurationError(
                    f"fault event at t={event.at:g}s is in the past "
                    f"(now={now:g}s)"
                )
            engine.schedule(event.at - now, self._applier(event))
            heal_at = self._heal_time(event)
            if heal_at is not None:
                engine.schedule(heal_at - now, self._healer(event))

    @staticmethod
    def _heal_time(event: object) -> "float | None":
        if isinstance(event, LinkFail):
            return event.until
        if isinstance(event, SdmaStall):
            return event.at + event.duration
        if isinstance(event, PageMigrationStorm):
            if event.duration == float("inf"):
                return None
            return event.at + event.duration
        return None

    def _applier(self, event: object):
        if isinstance(event, LinkDegrade):
            return lambda: self._apply_link_degrade(event)
        if isinstance(event, LinkFail):
            return lambda: self._apply_link_fail(event)
        if isinstance(event, SdmaStall):
            return lambda: self._apply_sdma_stall(event)
        if isinstance(event, PageMigrationStorm):
            return lambda: self._apply_page_storm(event)
        raise ConfigurationError(f"not a fault event: {event!r}")

    def _healer(self, event: object):
        if isinstance(event, LinkFail):
            return lambda: self._heal_link(event)
        if isinstance(event, SdmaStall):
            return lambda: self._heal_sdma_stall(event)
        if isinstance(event, PageMigrationStorm):
            return lambda: self._heal_page_storm(event)
        raise ConfigurationError(f"event {event!r} has no heal action")

    # -- link events -----------------------------------------------------------

    def _link_channels(self, link: Link) -> "tuple[Hashable, Hashable]":
        from ..hardware.xgmi import both_channels

        return both_channels(link)

    def _remember_healthy(self, channel: Hashable) -> float:
        network = self.node.network
        return self._healthy.setdefault(channel, network.channel(channel).capacity)

    def _apply_link_degrade(self, event: LinkDegrade) -> None:
        link = resolve_link(self.node.topology, event.link)
        lo, hi = sorted(link.endpoints())
        alias = (
            f"fault:link-degrade:{_endpoint_label(lo)}->{_endpoint_label(hi)}"
        )
        network = self.node.network
        for channel in self._link_channels(link):
            self._remember_healthy(channel)
            # Alias first: the re-level triggered by set_capacity blames
            # flows frozen at this channel under the fault bucket.
            if event.factor < 1.0:
                network.set_blame_alias(channel, alias)
            else:
                network.clear_blame_alias(channel)
            network.set_capacity(
                channel, link.capacity_per_direction * event.factor
            )

    def _apply_link_fail(self, event: LinkFail) -> None:
        link = resolve_link(self.node.topology, event.link)
        lo, hi = sorted(link.endpoints())
        alias = f"fault:link-fail:{_endpoint_label(lo)}->{_endpoint_label(hi)}"
        network = self.node.network
        for channel in self._link_channels(link):
            self._remember_healthy(channel)
            network.set_blame_alias(channel, alias)
            network.set_capacity(channel, 0.0)
        self.node.mark_link_failed(link.name)

    def _heal_link(self, event: LinkFail) -> None:
        link = resolve_link(self.node.topology, event.link)
        network = self.node.network
        for channel in self._link_channels(link):
            network.clear_blame_alias(channel)
            network.set_capacity(
                channel, self._healthy.get(channel, link.capacity_per_direction)
            )
        self.node.mark_link_restored(link.name)

    # -- SDMA events -----------------------------------------------------------

    def _apply_sdma_stall(self, event: SdmaStall) -> None:
        gcd, directions = _parse_engine(event.engine)
        sdma = self.node.gcd(gcd).sdma
        for outbound in directions:
            sdma.stall(outbound=outbound)

    def _heal_sdma_stall(self, event: SdmaStall) -> None:
        gcd, directions = _parse_engine(event.engine)
        sdma = self.node.gcd(gcd).sdma
        for outbound in directions:
            sdma.clear_stall(outbound=outbound)

    # -- page-migration storms ---------------------------------------------------

    def _apply_page_storm(self, event: PageMigrationStorm) -> None:
        channel = self.node.cpu.dram_channel(event.numa)
        healthy = self._remember_healthy(channel)
        network = self.node.network
        network.set_blame_alias(channel, f"fault:page-storm:numa{event.numa}")
        network.set_capacity(channel, healthy - event.rate)

    def _heal_page_storm(self, event: PageMigrationStorm) -> None:
        channel = self.node.cpu.dram_channel(event.numa)
        network = self.node.network
        network.clear_blame_alias(channel)
        network.set_capacity(channel, self._healthy[channel])

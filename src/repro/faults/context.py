"""Ambient fault-scenario context.

Mirrors :mod:`repro.obs.capture`: a module-level slot holds the
scenario to inject, and :class:`~repro.hardware.node.HardwareNode`
adopts it when no explicit ``faults=`` argument was given.  This is
what lets ``repro inject`` and fault-sensitivity sweeps reach the
sessions that measurement functions build *internally* (fig06's P2P
matrix, fig11's per-collective sessions) without threading a parameter
through every signature.

The context is a :class:`contextvars.ContextVar`, isolated per thread
(and asyncio task) so concurrent ``repro serve`` sessions can inject
different scenarios side by side.  Sweep workers (separate processes)
re-install it via
:func:`repro.runner.points.execute_point_with_faults`, so parallel
faulted sweeps behave identically to serial ones.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from .scenario import FaultScenario

_ACTIVE: "ContextVar[FaultScenario | None]" = ContextVar(
    "repro_ambient_faults", default=None
)


def active() -> "FaultScenario | None":
    """The ambient scenario new nodes should inject, if any."""
    return _ACTIVE.get()


@contextmanager
def install(scenario: "FaultScenario | None") -> Iterator["FaultScenario | None"]:
    """Make ``scenario`` ambient for the duration of the block.

    Nests: the previous scenario (usually ``None``) is restored on
    exit.  Installing ``None`` explicitly shields inner code from an
    outer scenario.
    """
    token = _ACTIVE.set(scenario)
    try:
        yield scenario
    finally:
        _ACTIVE.reset(token)

"""Fault injection and graceful degradation.

The paper measures a *healthy* MI250X node; this package asks "and
when it isn't?".  A declarative :class:`FaultScenario` describes timed
link degradations/failures, SDMA engine stalls and page-migration
storms; a :class:`FaultInjector` replays them off the simulation clock
by driving the flow network's dynamic-capacity machinery
(:meth:`FlowNetwork.set_capacity`).  The communication layers respond:
MPI p2p and RCCL steps retry with exponential backoff
(:class:`RetryPolicy`), RCCL rebuilds its ring around failed links,
and HIP memcpys fall back from a stalled SDMA engine at a modeled
penalty.

Entry points::

    scenario = FaultScenario(
        events=(LinkFail("1-3", at=0.5e-3),), name="kill-1-3"
    )
    with repro.Session(faults=scenario) as s: ...   # one session
    SweepRunner(jobs=4, faults=scenario)            # a faulted sweep
    # repro inject fig06 --scenario chaos.json      # from the CLI

Scenario fingerprints fold into result-cache keys, so faulted and
healthy runs of the same point never collide in the cache.
"""

from .context import active, install
from .injector import FaultInjector, resolve_link
from .retry import NO_RETRY, RetryPolicy
from .scenario import (
    SCENARIO_SCHEMA,
    FaultEvent,
    FaultScenario,
    LinkDegrade,
    LinkFail,
    PageMigrationStorm,
    SdmaStall,
)

__all__ = [
    "FaultScenario",
    "FaultEvent",
    "FaultInjector",
    "LinkDegrade",
    "LinkFail",
    "SdmaStall",
    "PageMigrationStorm",
    "RetryPolicy",
    "NO_RETRY",
    "SCENARIO_SCHEMA",
    "active",
    "install",
    "resolve_link",
]

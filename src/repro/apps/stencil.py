"""Halo-exchange stencil workload (CFD/weather-style).

A 1-D domain decomposition over ``k`` GCDs: each iteration every GCD
updates its slab (local HBM streaming) and exchanges halos with its
two ring neighbours (peer-to-peer over Infinity Fabric).  The model
exposes the decision the paper's topology analysis informs: *which GCD
order to decompose along*.

An emergent finding of the simulator (worth knowing when using this
node): the Fig. 1 mesh is remarkably ring-friendly — the naive
0,1,…,7 order performs identically to the xGMI Hamiltonian ring
0,1,3,2,4,5,7,6, because every routed segment of the naive ring lands
on an otherwise-idle link with the same 50 GB/s bottleneck.  Orders
that *interleave* packages (e.g. stride-3) are the ones that pay:
their long routes contend on shared single links and halo time rises
by ~75 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Literal, Sequence

from ..errors import BenchmarkError
from ..hardware.node import HardwareNode
from ..hip.runtime import HipRuntime
from ..session import Session
from ..units import MiB

#: The xGMI Hamiltonian ring of the Fig. 1 topology.
TOPOLOGY_AWARE_ORDER: tuple[int, ...] = (0, 1, 3, 2, 4, 5, 7, 6)


@dataclass(frozen=True)
class StencilConfig:
    """One stencil run configuration."""

    gcd_order: tuple[int, ...] = TOPOLOGY_AWARE_ORDER
    slab_bytes: int = 256 * MiB
    halo_bytes: int = 8 * MiB
    iterations: int = 4
    #: "kernel" = zero-copy halo reads; "memcpy" = hipMemcpyPeerAsync.
    exchange: Literal["kernel", "memcpy"] = "kernel"

    def __post_init__(self) -> None:
        if len(self.gcd_order) < 2:
            raise BenchmarkError("stencil needs at least two GCDs")
        if len(set(self.gcd_order)) != len(self.gcd_order):
            raise BenchmarkError("duplicate GCDs in stencil order")
        if self.slab_bytes <= 0 or self.halo_bytes <= 0:
            raise BenchmarkError("slab and halo sizes must be positive")
        if self.iterations <= 0:
            raise BenchmarkError("need at least one iteration")


@dataclass
class StencilResult:
    """Per-phase timing of a stencil run."""

    config: StencilConfig
    compute_seconds: float = 0.0
    exchange_seconds: float = 0.0
    iteration_seconds: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Sum over iterations."""
        return sum(self.iteration_seconds)

    @property
    def exchange_fraction(self) -> float:
        """Share of total time spent exchanging halos."""
        total = self.total_seconds
        return self.exchange_seconds / total if total else 0.0


def run_stencil(
    config: StencilConfig,
    *,
    node: HardwareNode | None = None,
) -> StencilResult:
    """Execute the stencil on a (fresh) simulated node."""
    hip = HipRuntime(node) if node is not None else Session().hip
    hip.enable_all_peer_access()
    order = config.gcd_order
    k = len(order)
    result = StencilResult(config)

    def program() -> Generator:
        slabs = {}
        halos_left = {}
        halos_right = {}
        for gcd in order:
            slabs[gcd] = (
                hip.malloc(config.slab_bytes, device=gcd, label=f"slab{gcd}"),
                hip.malloc(config.slab_bytes, device=gcd, label=f"slab'{gcd}"),
            )
            halos_left[gcd] = hip.malloc(
                config.halo_bytes, device=gcd, label=f"haloL{gcd}"
            )
            halos_right[gcd] = hip.malloc(
                config.halo_bytes, device=gcd, label=f"haloR{gcd}"
            )

        for _iteration in range(config.iterations):
            iter_start = hip.now
            # Phase 1: interior update on every GCD (concurrent).
            t0 = hip.now
            compute_events = [
                hip.launch_stream_copy(dst, src, device=gcd)
                for gcd, (src, dst) in slabs.items()
            ]
            yield hip.engine.all_of(compute_events)
            result.compute_seconds += hip.now - t0

            # Phase 2: halo exchange with both ring neighbours.
            t0 = hip.now
            events = []
            for position, gcd in enumerate(order):
                right = order[(position + 1) % k]
                if config.exchange == "memcpy":
                    events.append(
                        hip.memcpy_peer_async(
                            halos_left[right],
                            right,
                            halos_right[gcd],
                            gcd,
                            config.halo_bytes,
                            hip.stream_create(device=gcd),
                        )
                    )
                    events.append(
                        hip.memcpy_peer_async(
                            halos_right[gcd],
                            gcd,
                            halos_left[right],
                            right,
                            config.halo_bytes,
                            hip.stream_create(device=right),
                        )
                    )
                else:
                    # Zero-copy: each GCD reads its neighbour's boundary.
                    events.append(
                        hip.launch_stream_copy(
                            halos_left[right],
                            halos_right[gcd],
                            device=right,
                            stream=hip.stream_create(device=right),
                        )
                    )
                    events.append(
                        hip.launch_stream_copy(
                            halos_right[gcd],
                            halos_left[right],
                            device=gcd,
                            stream=hip.stream_create(device=gcd),
                        )
                    )
            yield hip.engine.all_of(events)
            result.exchange_seconds += hip.now - t0
            result.iteration_seconds.append(hip.now - iter_start)

    hip.run(program())
    return result


def order_comparison(
    orders: dict[str, Sequence[int]] | None = None,
    **config_kwargs,
) -> dict[str, StencilResult]:
    """Run the stencil under several GCD orders (the example's core)."""
    if orders is None:
        orders = {
            "naive 0..7": tuple(range(8)),
            "topology-aware ring": TOPOLOGY_AWARE_ORDER,
            "stride-3 (pathological)": (0, 3, 6, 1, 4, 7, 2, 5),
        }
    results = {}
    for label, order in orders.items():
        config = StencilConfig(gcd_order=tuple(order), **config_kwargs)
        results[label] = run_stencil(config)
    return results

"""Data-parallel training step (the §VI AI workload).

One optimization step on ``k`` GCDs: each worker loads its micro-batch
from host memory (H2D), runs a fixed amount of compute, and the
gradient is allreduced across workers.  Decisions the model exposes —
all informed by the paper:

- worker placement (*spread* vs *same-GPU-first*): governs the H2D
  phase via the shared NUMA ports (Fig. 4/5);
- input loading interface (pinned memcpy vs managed+XNACK): Fig. 3;
- allreduce library (MPI vs RCCL): Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Literal, Sequence

from ..config import placement_for_strategy
from ..errors import BenchmarkError
from ..hip.enums import HostMallocFlags
from ..mpi.collectives import allreduce as mpi_allreduce
from ..session import Session
from ..units import MiB


@dataclass(frozen=True)
class TrainStepConfig:
    """One training-step configuration."""

    num_workers: int = 8
    placement_strategy: Literal["spread", "same_gpu"] = "spread"
    batch_bytes: int = 64 * MiB
    gradient_bytes: int = 1 * MiB
    compute_seconds: float = 2e-3
    loader: Literal["pinned_memcpy", "managed_xnack"] = "pinned_memcpy"
    library: Literal["rccl", "mpi"] = "rccl"

    def __post_init__(self) -> None:
        if not 1 <= self.num_workers <= 8:
            raise BenchmarkError("num_workers must be 1..8")
        if self.batch_bytes <= 0 or self.gradient_bytes <= 0:
            raise BenchmarkError("sizes must be positive")
        if self.compute_seconds < 0:
            raise BenchmarkError("compute time must be non-negative")

    @property
    def placement(self) -> tuple[int, ...]:
        """GCD indices selected by the placement strategy."""
        return tuple(
            placement_for_strategy(self.placement_strategy, self.num_workers)
        )


@dataclass
class TrainStepResult:
    """Per-phase timing of one step."""

    config: TrainStepConfig
    load_seconds: float = 0.0
    compute_seconds: float = 0.0
    allreduce_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Sum of the three phases."""
        return self.load_seconds + self.compute_seconds + self.allreduce_seconds

    def breakdown(self) -> dict[str, float]:
        """``{phase: seconds}`` mapping."""
        return {
            "load": self.load_seconds,
            "compute": self.compute_seconds,
            "allreduce": self.allreduce_seconds,
        }


def _input_load_phase(
    hip: HipRuntime, config: TrainStepConfig
) -> Generator:
    """All workers pull their micro-batch from host memory concurrently."""
    events = []
    for gcd in config.placement:
        hip.set_device(gcd)
        device_batch = hip.malloc(config.batch_bytes, label=f"batch@{gcd}")
        if config.loader == "pinned_memcpy":
            host = hip.host_malloc(
                config.batch_bytes, HostMallocFlags.NON_COHERENT, device=gcd
            )
            events.append(
                hip.memcpy_async(device_batch, host, stream=hip.stream_create(device=gcd))
            )
        else:
            managed = hip.malloc_managed(config.batch_bytes, device=gcd)
            events.append(
                hip.launch_stream_copy(
                    device_batch,
                    managed,
                    device=gcd,
                    stream=hip.stream_create(device=gcd),
                )
            )
    yield hip.engine.all_of(events)


def run_train_step(config: TrainStepConfig) -> TrainStepResult:
    """Execute one step on a fresh node; returns the phase breakdown."""
    session = Session(xnack_enabled=(config.loader == "managed_xnack"))
    node = session.node
    result = TrainStepResult(config)

    # Phase 1 + 2 run under a single runtime (one driver process per
    # node, as frameworks do); the allreduce runs on the chosen library.
    hip = session.hip

    def phases() -> Generator:
        t0 = hip.now
        yield from _input_load_phase(hip, config)
        result.load_seconds = hip.now - t0
        t0 = hip.now
        yield hip.engine.timeout(config.compute_seconds)
        result.compute_seconds = hip.now - t0

    hip.run(phases())

    if config.num_workers == 1:
        return result

    if config.library == "rccl":
        comm = session.rccl_communicator(list(config.placement))

        def collective() -> Generator:
            t0 = node.now
            yield from comm.allreduce(config.gradient_bytes)
            return node.now - t0

        result.allreduce_seconds = node.engine.run_process(collective())
    else:
        # The MPI path uses its own fresh node: ranks are separate
        # processes whose IPC-mapping costs must not alias the driver's.
        world = Session(
            xnack_enabled=(config.loader == "managed_xnack")
        ).mpi_world(list(config.placement))

        def rank_main(ctx) -> Generator:
            send = ctx.hip.malloc(config.gradient_bytes)
            recv = ctx.hip.malloc(config.gradient_bytes)
            # Warm-up maps IPC handles, as a real framework's first
            # iteration does.
            yield from mpi_allreduce(ctx, send, recv, config.gradient_bytes)
            yield from ctx.barrier()
            t0 = ctx.now
            yield from mpi_allreduce(ctx, send, recv, config.gradient_bytes)
            return ctx.now - t0

        result.allreduce_seconds = max(world.run(rank_main))
    return result


def configuration_sweep(
    *,
    num_workers: Sequence[int] = (2, 4, 8),
    batch_bytes: int = 64 * MiB,
    gradient_bytes: int = 1 * MiB,
) -> list[TrainStepResult]:
    """The example's grid: placements × loaders × libraries."""
    results = []
    for workers in num_workers:
        for strategy in ("spread", "same_gpu"):
            for library in ("rccl", "mpi"):
                config = TrainStepConfig(
                    num_workers=workers,
                    placement_strategy=strategy,
                    batch_bytes=batch_bytes,
                    gradient_bytes=gradient_bytes,
                    library=library,
                )
                results.append(run_train_step(config))
    return results

"""Distributed matrix transpose (spectral-method style).

Pseudo-spectral solvers (the paper cites turbulence DNS codes)
transpose a distributed array every timestep: each of ``k`` GCDs sends
a block to every other GCD — an alltoall whose traffic crosses every
tier of the Infinity Fabric mesh simultaneously.  The model runs the
alltoall over GPU-aware MPI and reports achieved aggregate bandwidth,
exposing how the mesh's weakest links gate a bandwidth-bound
all-to-all on this node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

from ..errors import BenchmarkError
from ..mpi.collectives import alltoall
from ..session import Session
from ..units import MiB


@dataclass(frozen=True)
class TransposeConfig:
    """One transpose configuration."""

    gcds: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7)
    matrix_bytes_per_gcd: int = 256 * MiB

    def __post_init__(self) -> None:
        if len(self.gcds) < 2:
            raise BenchmarkError("transpose needs at least two GCDs")
        if len(set(self.gcds)) != len(self.gcds):
            raise BenchmarkError("duplicate GCDs")
        if self.matrix_bytes_per_gcd <= 0:
            raise BenchmarkError("matrix size must be positive")


@dataclass
class TransposeResult:
    config: TransposeConfig
    alltoall_seconds: float = 0.0
    local_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Communication plus local-transpose time."""
        return self.alltoall_seconds + self.local_seconds

    @property
    def aggregate_bandwidth(self) -> float:
        """Bytes exchanged over the fabric per second, all ranks."""
        k = len(self.config.gcds)
        moved = (
            len(self.config.gcds)
            * self.config.matrix_bytes_per_gcd
            * (k - 1)
            / k
        )
        if self.alltoall_seconds == 0:
            return 0.0
        return moved / self.alltoall_seconds


def run_transpose(config: TransposeConfig) -> TransposeResult:
    """One transpose step: alltoall + local block transposes."""
    world = Session().mpi_world(list(config.gcds))
    result = TransposeResult(config)

    def rank_main(ctx) -> Generator:
        send = ctx.hip.malloc(config.matrix_bytes_per_gcd, label="send")
        recv = ctx.hip.malloc(config.matrix_bytes_per_gcd, label="recv")
        scratch = ctx.hip.malloc(config.matrix_bytes_per_gcd, label="scratch")
        # Warm-up alltoall maps the IPC handles.
        yield from alltoall(ctx, send, recv, config.matrix_bytes_per_gcd)
        yield from ctx.barrier()
        t0 = ctx.now
        yield from alltoall(ctx, send, recv, config.matrix_bytes_per_gcd)
        comm_time = ctx.now - t0
        # Local transpose of the received blocks: one HBM pass.
        t0 = ctx.now
        yield ctx.hip.launch_stream_copy(scratch, recv, device=None)
        yield from ctx.hip.device_synchronize()
        local_time = ctx.now - t0
        return comm_time, local_time

    timings = world.run(rank_main)
    result.alltoall_seconds = max(t[0] for t in timings)
    result.local_seconds = max(t[1] for t in timings)
    return result


def scaling_study(
    gcd_counts: Sequence[int] = (2, 4, 8),
    *,
    matrix_bytes_per_gcd: int = 256 * MiB,
) -> list[TransposeResult]:
    """Transpose at several GCD counts (the example's sweep)."""
    results = []
    for count in gcd_counts:
        config = TransposeConfig(
            gcds=tuple(range(count)),
            matrix_bytes_per_gcd=matrix_bytes_per_gcd,
        )
        results.append(run_transpose(config))
    return results

"""Application workload models.

The paper's introduction motivates the study with multi-GPU scientific
and ML workloads (CFD, molecular dynamics, plasma simulation, training).
This package models three such workloads *on top of the public API* —
they allocate through the HIP layer, communicate through MPI/RCCL, and
therefore inherit every effect the paper characterizes:

- :mod:`repro.apps.stencil` — an iterative halo-exchange stencil
  (CFD/weather-style domain decomposition): sensitive to GCD ordering
  vs the xGMI ring.
- :mod:`repro.apps.data_parallel` — a data-parallel training step
  (input H2D load + compute + gradient allreduce): sensitive to NUMA
  placement and the MPI/RCCL choice.
- :mod:`repro.apps.transpose` — a distributed matrix transpose
  (spectral-method style alltoall): bandwidth-bound all-to-all traffic
  over the heterogeneous mesh.

Each model returns a per-phase time breakdown so the examples can show
*where* a configuration loses its time.
"""

from .stencil import StencilConfig, run_stencil
from .data_parallel import TrainStepConfig, run_train_step
from .transpose import TransposeConfig, run_transpose

__all__ = [
    "StencilConfig",
    "run_stencil",
    "TrainStepConfig",
    "run_train_step",
    "TransposeConfig",
    "run_transpose",
]

"""Core microbenchmarks: events/sec, flow churn, figure-sweep time.

All scenarios are deterministic (sizes and channel memberships derive
from loop indices), so two runs on the same machine measure the same
work.  Wall-clock numbers are best-of-``repeats`` to damp scheduler
noise.

The flow-churn benchmark is the headline: it drives the same workload
through ``FlowNetwork(incremental=True)`` (the persistent
:class:`~repro.sim.fairshare.FairshareSolver`) and
``FlowNetwork(incremental=False)`` (a full batch re-solve per change,
the pre-solver behaviour) and reports the speedup.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from typing import Any, Callable, Generator

from ..sim.engine import SimEngine
from ..sim.flow import FlowNetwork
from ..units import GiB, MiB

#: Default measurement repetitions (best-of).
REPEATS = 3
#: Decimal places kept for wall-second floats: enough to compare runs,
#: few enough that reports diff cleanly.
ROUND_DIGITS = 6


def _best_of(fn: Callable[[], float], repeats: int) -> float:
    return min(fn() for _ in range(max(1, repeats)))


def _git_sha() -> str:
    """Current commit, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip()


def _round_floats(value: Any, digits: int = ROUND_DIGITS) -> Any:
    """Round every float in a nested report structure (for diffing)."""
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {k: _round_floats(v, digits) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(v, digits) for v in value]
    return value


# -- event engine -------------------------------------------------------------


def bench_engine_events(
    num_timers: int = 200_000, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Throughput of pooled timer dispatch (events/sec)."""

    def once() -> float:
        engine = SimEngine()
        sink = []

        def fire(i: int) -> None:
            if i % 1024 == 0:
                sink.append(i)

        t0 = time.perf_counter()
        for i in range(num_timers):
            # Deterministic pseudo-shuffled delays exercise the heap.
            engine.call_after(((i * 2654435761) % 4096) * 1e-9, fire, i)
        engine.run()
        return time.perf_counter() - t0

    elapsed = _best_of(once, repeats)
    return {
        "timers": num_timers,
        "wall_seconds": elapsed,
        "events_per_second": num_timers / elapsed,
    }


def bench_engine_epochs(
    num_events: int = 200_000, fanout: int = 64, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Throughput of epoch (batched same-timestamp) dispatch.

    Schedules ``num_events`` timers over ``num_events / fanout``
    distinct timestamps, the shape collective steps and barrier-ish
    workloads produce: the engine pops each timestamp's bucket once and
    dispatches its ``fanout`` occurrences as one epoch — one clock
    advance and one heap pop per *epoch* rather than per event.
    ``epoch_events_per_second`` is the acceptance headline for the
    batched event core.

    Unlike :func:`bench_engine_events`, only the drain (``run()``) is
    timed: scheduling-side cost is that benchmark's job, and here it
    would bury the dispatch loop under the delay arithmetic.
    """
    distinct = max(1, num_events // fanout)

    def once() -> float:
        engine = SimEngine()
        sink = []

        def fire(i: int) -> None:
            if i % 1024 == 0:
                sink.append(i)

        for i in range(num_events):
            # Pseudo-shuffled arrival over `distinct` shared instants.
            engine.call_after(
                ((i * 2654435761) % distinct + 1) * 1e-9, fire, i
            )
        t0 = time.perf_counter()
        engine.run()
        return time.perf_counter() - t0

    elapsed = _best_of(once, repeats)
    return {
        "events": num_events,
        "fanout": fanout,
        "distinct_timestamps": distinct,
        "wall_seconds": elapsed,
        "epoch_events_per_second": num_events / elapsed,
    }


def bench_timer_cancel(
    num_timers: int = 200_000, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Throughput of schedule + lazy O(1) cancel (timers/sec).

    Half the timers are cancelled before the engine runs; cancelled
    records are skipped (and recycled) during dispatch rather than
    sifted out of the heap.
    """

    def once() -> float:
        engine = SimEngine()

        def fire() -> None:
            pass

        t0 = time.perf_counter()
        handles = [
            engine.schedule(((i * 2654435761) % 4096) * 1e-9, fire)
            for i in range(num_timers)
        ]
        for handle in handles[::2]:
            handle.cancel()
        engine.run()
        return time.perf_counter() - t0

    elapsed = _best_of(once, repeats)
    return {
        "timers": num_timers,
        "cancelled": num_timers // 2,
        "wall_seconds": elapsed,
        "timers_per_second": num_timers / elapsed,
    }


# -- fair-share flow churn -----------------------------------------------------


def _run_churn(
    incremental: bool,
    pairs: int,
    flows_per_pair: int,
    metrics: Any = None,
    spans: Any = None,
) -> float:
    """One churn run: ``pairs`` concurrent back-to-back flow chains.

    Each pair owns a private two-channel route; every seventh flow also
    crosses a shared backbone channel, so most arrivals re-level a
    small component while some couple many pairs — the mixed regime the
    fabric model produces.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry` or ``None``) is threaded
    into the engine and network so the same workload can measure
    observability overhead; ``spans`` (a
    :class:`~repro.obs.spans.SpanRecorder` or ``None``) likewise opens
    one span per flow to measure the span layer's cost.
    """
    engine = SimEngine(metrics=metrics)
    network = FlowNetwork(
        engine, incremental=incremental, metrics=metrics, spans=spans
    )
    backbone = "backbone"
    network.add_channel(backbone, 200 * GiB)
    for pair in range(pairs):
        network.add_channel(("up", pair), 100 * GiB)
        network.add_channel(("down", pair), 100 * GiB)

    def driver(pair: int) -> Generator:
        for i in range(flows_per_pair):
            channels = [("up", pair), ("down", pair)]
            if i % 7 == 0:
                channels.append(backbone)
            size = (1 + ((i * 37 + pair) % 5)) * MiB
            span = (
                spans.begin("flow", "churn", start=engine.now)
                if spans
                else None
            )
            flow = network.transfer(channels, size, cap=80 * GiB, span=span)
            yield flow.done
            if span is not None:
                spans.finish(span, engine.now)

    for pair in range(pairs):
        engine.process(driver(pair), name=f"pair{pair}")
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0


def bench_flow_churn(
    pairs: int = 32, flows_per_pair: int = 120, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Incremental vs batch re-solve under flow churn.

    ``speedup`` is the headline acceptance number: wall time of the
    legacy full-re-solve network over the incremental one on identical
    workloads.
    """
    total_flows = pairs * flows_per_pair
    incremental = _best_of(
        lambda: _run_churn(True, pairs, flows_per_pair), repeats
    )
    legacy = _best_of(lambda: _run_churn(False, pairs, flows_per_pair), repeats)
    return {
        "pairs": pairs,
        "flows_per_pair": flows_per_pair,
        "total_flows": total_flows,
        "incremental_wall_seconds": incremental,
        "legacy_wall_seconds": legacy,
        "incremental_flows_per_second": total_flows / incremental,
        "legacy_flows_per_second": total_flows / legacy,
        "speedup": legacy / incremental,
    }


def _run_integration(backend: str, flows: int, transfers: int) -> tuple[float, float]:
    """One integration run; ``(wall seconds, final sim time)``.

    ``flows`` long-lived background flows sit on private channels (the
    solver's single-flow fast path, so re-levels are cheap) while a
    ticker issues ``transfers`` short transfers back to back.  Every
    arrival and completion advances the constant-rate integral and
    recomputes the next-completion ETA over *all* live flows — the
    O(active flows) interval work the vectorized backends turn into
    one array statement.
    """
    engine = SimEngine()
    network = FlowNetwork(engine, backend=backend)
    for i in range(flows):
        network.add_channel(("bg", i), 1 * GiB)
    network.add_channel("ticker", 100 * GiB)
    for i in range(flows):
        network.transfer([("bg", i)], 1_000 * GiB, label=f"bg{i}")

    def ticker() -> Generator:
        for i in range(transfers):
            flow = network.transfer(["ticker"], (1 + i % 7) * MiB)
            yield flow.done

    engine.process(ticker(), name="ticker")
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0, engine.now


def bench_flow_integration(
    flows: int = 256, transfers: int = 2_000, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Vectorized vs per-flow-loop constant-rate interval integration.

    Runs the identical workload under every available backend
    (``python`` always, ``vectorized``/``compiled`` as resolvable) and
    reports per-backend throughput.  ``speedup`` — best backend over
    ``python`` — is the acceptance headline; ``identical_final_time``
    double-checks the bit-identity contract on this workload (the
    hypothesis differential suite is the real guarantee).
    """
    from ..sim.backends import resolve_backend

    backends = ["python"]
    for candidate in ("vectorized", "compiled"):
        if resolve_backend(candidate).effective == candidate:
            backends.append(candidate)
    walls: dict[str, float] = {}
    finals: dict[str, float] = {}
    for backend in backends:
        best = float("inf")
        for _ in range(max(1, repeats)):
            wall, final = _run_integration(backend, flows, transfers)
            best = min(best, wall)
        walls[backend] = best
        finals[backend] = final
    accelerated = [w for b, w in walls.items() if b != "python"]
    return {
        "flows": flows,
        "transfers": transfers,
        "backends": backends,
        "wall_seconds": walls,
        "transfers_per_second": {
            backend: transfers / wall for backend, wall in walls.items()
        },
        # speedup = 1.0 on numpy-less machines where only the scalar
        # loop ran (check_bench skips the floor via fastest_backend).
        "speedup": walls["python"] / min(accelerated) if accelerated else 1.0,
        "fastest_backend": min(walls, key=walls.__getitem__),
        "identical_final_time": len(set(finals.values())) == 1,
    }


def _interleaved_best_of(
    variants: dict[str, Callable[[], float]], repeats: int
) -> dict[str, float]:
    """Best-of timing with warm-up and order alternation.

    Overhead benchmarks compare near-identical workloads, so harness
    bias dominates real differences unless (a) every variant runs once
    untimed first — the process's first run pays allocator growth and
    code-object warm-up, which used to land entirely on whichever
    variant went first and produced *negative* overhead for the rest —
    and (b) the measured visiting order alternates per repeat, so
    slow machine-load drift hits all variants symmetrically.
    """
    names = list(variants)
    for name in names:  # warm-up, discarded
        variants[name]()
    best = dict.fromkeys(names, float("inf"))
    for repeat in range(max(1, repeats)):
        order = names if repeat % 2 == 0 else list(reversed(names))
        for name in order:
            best[name] = min(best[name], variants[name]())
    return best


def bench_metrics_overhead(
    pairs: int = 32, flows_per_pair: int = 120, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Cost of the observability layer on the flow-churn workload.

    Runs the identical incremental-churn workload three ways: with the
    shared disabled registry (the default every hot path takes), with a
    freshly constructed disabled registry, and with metrics enabled.
    ``disabled_overhead`` is the acceptance number — a disabled
    registry must stay within a few percent of the default path,
    because *every* simulation pays the ``if metrics:`` guard.
    Timings go through :func:`_interleaved_best_of` so the ratios
    measure the guard, not harness warm-up order.
    """
    from ..obs.metrics import MetricsRegistry

    total_flows = pairs * flows_per_pair
    best = _interleaved_best_of(
        {
            "baseline": lambda: _run_churn(True, pairs, flows_per_pair),
            "disabled": lambda: _run_churn(
                True,
                pairs,
                flows_per_pair,
                metrics=MetricsRegistry(enabled=False, sample_capacity=0),
            ),
            "enabled": lambda: _run_churn(
                True, pairs, flows_per_pair, metrics=MetricsRegistry()
            ),
        },
        repeats,
    )
    return {
        "pairs": pairs,
        "flows_per_pair": flows_per_pair,
        "total_flows": total_flows,
        "baseline_wall_seconds": best["baseline"],
        "disabled_wall_seconds": best["disabled"],
        "enabled_wall_seconds": best["enabled"],
        "disabled_overhead": best["disabled"] / best["baseline"] - 1.0,
        "enabled_overhead": best["enabled"] / best["baseline"] - 1.0,
    }


def bench_span_overhead(
    pairs: int = 32, flows_per_pair: int = 120, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Cost of the causal-span layer on the flow-churn workload.

    Same structure as :func:`bench_metrics_overhead`: baseline (no
    recorder), a disabled recorder (the ``if spans:`` guard every flow
    pays), and an enabled recorder (span per flow + solver bottleneck
    tracking + per-interval blame accounting).  ``disabled_overhead``
    is the acceptance number — spans off must stay within a few
    percent of the uninstrumented path.
    """
    from ..obs.spans import SpanRecorder

    total_flows = pairs * flows_per_pair
    best = _interleaved_best_of(
        {
            "baseline": lambda: _run_churn(True, pairs, flows_per_pair),
            "disabled": lambda: _run_churn(
                True,
                pairs,
                flows_per_pair,
                spans=SpanRecorder(enabled=False),
            ),
            "enabled": lambda: _run_churn(
                True, pairs, flows_per_pair, spans=SpanRecorder()
            ),
        },
        repeats,
    )
    return {
        "pairs": pairs,
        "flows_per_pair": flows_per_pair,
        "total_flows": total_flows,
        "baseline_wall_seconds": best["baseline"],
        "disabled_wall_seconds": best["disabled"],
        "enabled_wall_seconds": best["enabled"],
        "disabled_overhead": best["disabled"] / best["baseline"] - 1.0,
        "enabled_overhead": best["enabled"] / best["baseline"] - 1.0,
    }


def _run_capacity_churn(pairs: int, changes: int) -> float:
    """One capacity-churn run: re-level live components ``changes`` times.

    The network carries one long-lived flow per pair (every third also
    crossing a shared backbone, so some changes couple many pairs); a
    driver then walks the channels changing capacities in a
    deterministic pseudo-random pattern — the workload fault injection
    produces (link degrades/heals) at benchmark density.  Capacities
    stay in [0.5, 0.99] × healthy so no flow ever fails or starves.
    """
    engine = SimEngine()
    network = FlowNetwork(engine, incremental=True)
    backbone = "backbone"
    network.add_channel(backbone, 200 * GiB)
    for pair in range(pairs):
        network.add_channel(("up", pair), 100 * GiB)
        network.add_channel(("down", pair), 100 * GiB)
    for pair in range(pairs):
        channels = [("up", pair), ("down", pair)]
        if pair % 3 == 0:
            channels.append(backbone)
        network.transfer(channels, 10 * GiB, cap=80 * GiB)

    def churner() -> Generator:
        for i in range(changes):
            pair = (i * 2654435761) % pairs
            side = "up" if i % 2 == 0 else "down"
            factor = 0.5 + ((i * 37) % 50) / 100.0
            network.set_capacity((side, pair), 100 * GiB * factor)
            yield engine.timeout(1e-6)

    engine.process(churner(), name="churner")
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0


def bench_set_capacity(
    pairs: int = 32, changes: int = 20_000, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Throughput of dynamic capacity changes on a loaded network.

    ``capacity_changes_per_second`` is the acceptance number for the
    fault-injection path: every :meth:`FlowNetwork.set_capacity` call
    re-levels the touched component incrementally, so this must stay
    within the same order as flow churn, not degrade to batch re-solve
    cost.
    """
    elapsed = _best_of(lambda: _run_capacity_churn(pairs, changes), repeats)
    return {
        "pairs": pairs,
        "changes": changes,
        "wall_seconds": elapsed,
        "capacity_changes_per_second": changes / elapsed,
    }


# -- figure sweep ---------------------------------------------------------------


def bench_figure_sweep(*, smoke: bool = False) -> dict[str, Any]:
    """Wall time of a representative slice of the figure pipeline."""
    from ..bench_suites.comm_scope import h2d_sweep, peer_sweep

    if smoke:
        h2d_sizes = [4 * MiB]
        peer_sizes = [4 * MiB]
        interfaces = ("pinned_memcpy",)
    else:
        h2d_sizes = [1 * MiB, 16 * MiB, 256 * MiB, 1 * GiB]
        peer_sizes = [1 * MiB, 64 * MiB, 1 * GiB]
        interfaces = ("pinned_memcpy", "managed_zerocopy", "managed_migration")

    t0 = time.perf_counter()
    h2d = h2d_sweep(interfaces, h2d_sizes)
    peer = peer_sweep(sizes=peer_sizes)
    elapsed = time.perf_counter() - t0
    return {
        "measurements": len(h2d) + len(peer),
        "wall_seconds": elapsed,
    }


# -- sweep runner ---------------------------------------------------------------


def _parallel_workload(smoke: bool):
    from ..bench_suites.comm_scope import h2d_points, peer_points

    if smoke:
        sizes = [4 * MiB, 64 * MiB]
        interfaces = ("pinned_memcpy", "managed_zerocopy")
    else:
        sizes = [1 * MiB, 16 * MiB, 256 * MiB, 1 * GiB]
        interfaces = (
            "pageable_memcpy",
            "pinned_memcpy",
            "managed_zerocopy",
            "managed_migration",
        )
    return h2d_points(interfaces, sizes) + peer_points(sizes=sizes)


def bench_sweep_parallel(*, jobs: int | None = None) -> dict[str, Any]:
    """Serial vs multi-process sweep over one uncached point grid.

    ``speedup`` is an acceptance number only when ``jobs > 1`` actually
    ran (single-core machines and sandboxes without multiprocessing
    fall back to serial; ``parallel_fallbacks`` records that).  The
    grid is full-size even under ``--smoke`` — a too-small grid would
    measure pool start-up, not sweep throughput.
    """
    from ..runner import SweepRunner

    points = _parallel_workload(False)
    if jobs is None:
        jobs = min(4, os.cpu_count() or 1)
    serial = SweepRunner(jobs=1, use_cache=False)
    t0 = time.perf_counter()
    serial_outputs = serial.run_points(points)
    serial_wall = time.perf_counter() - t0
    parallel = SweepRunner(jobs=jobs, use_cache=False)
    t0 = time.perf_counter()
    parallel_outputs = parallel.run_points(points)
    parallel_wall = time.perf_counter() - t0
    return {
        "points": len(points),
        "jobs": jobs,
        "cores": os.cpu_count() or 1,
        "parallel_fallbacks": parallel.stats.parallel_fallbacks,
        "serial_wall_seconds": serial_wall,
        "parallel_wall_seconds": parallel_wall,
        "speedup": serial_wall / max(parallel_wall, 1e-9),
        "identical_outputs": serial_outputs == parallel_outputs,
    }


def bench_cache_hit(*, smoke: bool = False) -> dict[str, Any]:
    """Cold vs warm sweep against a throwaway result cache."""
    from ..runner import ResultCache, SweepRunner

    points = _parallel_workload(smoke)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold_runner = SweepRunner(jobs=1, cache=ResultCache(tmp))
        t0 = time.perf_counter()
        cold_outputs = cold_runner.run_points(points)
        cold_wall = time.perf_counter() - t0
        warm_runner = SweepRunner(jobs=1, cache=ResultCache(tmp))
        t0 = time.perf_counter()
        warm_outputs = warm_runner.run_points(points)
        warm_wall = time.perf_counter() - t0
    return {
        "points": len(points),
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "speedup": cold_wall / max(warm_wall, 1e-9),
        "warm_hits": warm_runner.stats.cache_hits,
        "identical_outputs": cold_outputs == warm_outputs,
    }


# -- suite ---------------------------------------------------------------------


def run_suite(*, smoke: bool = False, repeats: int | None = None) -> dict[str, Any]:
    """Run every microbenchmark; returns the ``BENCH_core.json`` payload.

    Reports are diff-friendly: results and headline floats are rounded
    to :data:`ROUND_DIGITS` places, and the only run-specific values
    (timestamp, platform string) live under ``meta`` so two reports of
    the same code can be compared by everything outside that block.
    """
    from .. import __version__

    if repeats is None:
        repeats = 1 if smoke else REPEATS
    scale = 10 if smoke else 1
    results = {
        "engine_events": bench_engine_events(
            200_000 // scale, repeats=repeats
        ),
        "engine_epochs": bench_engine_epochs(
            200_000 // scale, repeats=repeats
        ),
        "timer_cancel": bench_timer_cancel(200_000 // scale, repeats=repeats),
        "flow_integration": bench_flow_integration(
            256 // (4 if smoke else 1),
            2_000 // scale,
            repeats=repeats,
        ),
        "flow_churn": bench_flow_churn(
            32 // (4 if smoke else 1),
            120 // (4 if smoke else 1),
            repeats=repeats,
        ),
        "metrics_overhead": bench_metrics_overhead(
            32 // (4 if smoke else 1),
            120 // (4 if smoke else 1),
            repeats=repeats,
        ),
        "span_overhead": bench_span_overhead(
            32 // (4 if smoke else 1),
            120 // (4 if smoke else 1),
            repeats=repeats,
        ),
        "set_capacity": bench_set_capacity(
            32 // (4 if smoke else 1),
            20_000 // scale,
            repeats=repeats,
        ),
        "figure_sweep": bench_figure_sweep(smoke=smoke),
        "sweep_parallel": bench_sweep_parallel(),
        "cache_hit": bench_cache_hit(smoke=smoke),
    }
    headline = {
        "events_per_second": results["engine_events"]["events_per_second"],
        "epoch_events_per_second": results["engine_epochs"][
            "epoch_events_per_second"
        ],
        "flow_integration_speedup": results["flow_integration"]["speedup"],
        "incremental_flows_per_second": results["flow_churn"][
            "incremental_flows_per_second"
        ],
        "churn_speedup_vs_batch_resolve": results["flow_churn"]["speedup"],
        "capacity_changes_per_second": results["set_capacity"][
            "capacity_changes_per_second"
        ],
        "metrics_disabled_overhead": results["metrics_overhead"][
            "disabled_overhead"
        ],
        "metrics_enabled_overhead": results["metrics_overhead"][
            "enabled_overhead"
        ],
        "spans_disabled_overhead": results["span_overhead"][
            "disabled_overhead"
        ],
        "spans_enabled_overhead": results["span_overhead"][
            "enabled_overhead"
        ],
        "figure_sweep_seconds": results["figure_sweep"]["wall_seconds"],
        "sweep_parallel_speedup": results["sweep_parallel"]["speedup"],
        "cache_hit_speedup": results["cache_hit"]["speedup"],
    }
    return {
        "schema": "repro-bench-core/6",
        "version": __version__,
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "smoke": smoke,
        "results": _round_floats(results),
        "headline": _round_floats(headline),
        "meta": {
            "created_unix": time.time(),
            "platform": platform.platform(),
        },
    }


def write_report(path: str, report: dict[str, Any]) -> None:
    """Serialize a suite report to ``path`` as indented JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a suite report."""
    results = report["results"]
    lines = [
        f"simulation-core performance ({report['python']}, "
        + ("smoke)" if report["smoke"] else "full)"),
        "",
        f"  event dispatch   {results['engine_events']['events_per_second']:>12,.0f} events/s",
        f"  epoch dispatch   {results['engine_epochs']['epoch_events_per_second']:>12,.0f} events/s "
        f"(fanout {results['engine_epochs']['fanout']})",
        f"  timer cancel     {results['timer_cancel']['timers_per_second']:>12,.0f} timers/s",
        f"  flow integration {results['flow_integration']['speedup']:>12.2f} x "
        f"({results['flow_integration']['fastest_backend']} over python, "
        f"{results['flow_integration']['flows']} flows)",
        f"  flow churn       {results['flow_churn']['incremental_flows_per_second']:>12,.0f} flows/s "
        f"(incremental; {results['flow_churn']['speedup']:.2f}x vs batch re-solve)",
        f"  capacity churn   {results['set_capacity']['capacity_changes_per_second']:>12,.0f} changes/s "
        f"({results['set_capacity']['pairs']} pairs)",
        f"  metrics overhead {results['metrics_overhead']['disabled_overhead']:>12.1%} disabled "
        f"/ {results['metrics_overhead']['enabled_overhead']:+.1%} enabled",
        f"  span overhead    {results['span_overhead']['disabled_overhead']:>12.1%} disabled "
        f"/ {results['span_overhead']['enabled_overhead']:+.1%} enabled",
        f"  figure sweep     {results['figure_sweep']['wall_seconds']:>12.2f} s "
        f"({results['figure_sweep']['measurements']} measurements)",
        f"  sweep parallel   {results['sweep_parallel']['speedup']:>12.2f} x "
        f"({results['sweep_parallel']['jobs']} job(s) over "
        f"{results['sweep_parallel']['points']} points)",
        f"  cache hit        {results['cache_hit']['speedup']:>12.2f} x "
        f"(warm over cold, {results['cache_hit']['points']} points)",
    ]
    return "\n".join(lines)

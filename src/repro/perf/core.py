"""Core microbenchmarks: events/sec, flow churn, figure-sweep time.

All scenarios are deterministic (sizes and channel memberships derive
from loop indices), so two runs on the same machine measure the same
work.  Wall-clock numbers are best-of-``repeats`` to damp scheduler
noise.

The flow-churn benchmark is the headline: it drives the same workload
through ``FlowNetwork(incremental=True)`` (the persistent
:class:`~repro.sim.fairshare.FairshareSolver`) and
``FlowNetwork(incremental=False)`` (a full batch re-solve per change,
the pre-solver behaviour) and reports the speedup.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from typing import Any, Callable, Generator

from ..sim.engine import SimEngine
from ..sim.flow import FlowNetwork
from ..units import GiB, MiB

#: Default measurement repetitions (best-of).
REPEATS = 3
#: Decimal places kept for wall-second floats: enough to compare runs,
#: few enough that reports diff cleanly.
ROUND_DIGITS = 6


def _best_of(fn: Callable[[], float], repeats: int) -> float:
    return min(fn() for _ in range(max(1, repeats)))


def _git_sha() -> str:
    """Current commit, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip()


def _round_floats(value: Any, digits: int = ROUND_DIGITS) -> Any:
    """Round every float in a nested report structure (for diffing)."""
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {k: _round_floats(v, digits) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(v, digits) for v in value]
    return value


# -- event engine -------------------------------------------------------------


def bench_engine_events(
    num_timers: int = 200_000, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Throughput of pooled timer dispatch (events/sec)."""

    def once() -> float:
        engine = SimEngine()
        sink = []

        def fire(i: int) -> None:
            if i % 1024 == 0:
                sink.append(i)

        t0 = time.perf_counter()
        for i in range(num_timers):
            # Deterministic pseudo-shuffled delays exercise the heap.
            engine.call_after(((i * 2654435761) % 4096) * 1e-9, fire, i)
        engine.run()
        return time.perf_counter() - t0

    elapsed = _best_of(once, repeats)
    return {
        "timers": num_timers,
        "wall_seconds": elapsed,
        "events_per_second": num_timers / elapsed,
    }


def bench_engine_epochs(
    num_events: int = 200_000, fanout: int = 64, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Throughput of epoch (batched same-timestamp) dispatch.

    Schedules ``num_events`` timers over ``num_events / fanout``
    distinct timestamps, the shape collective steps and barrier-ish
    workloads produce: the engine pops each timestamp's bucket once and
    dispatches its ``fanout`` occurrences as one epoch — one clock
    advance and one heap pop per *epoch* rather than per event.
    ``epoch_events_per_second`` is the acceptance headline for the
    batched event core.

    Unlike :func:`bench_engine_events`, only the drain (``run()``) is
    timed: scheduling-side cost is that benchmark's job, and here it
    would bury the dispatch loop under the delay arithmetic.
    """
    distinct = max(1, num_events // fanout)

    def once() -> float:
        engine = SimEngine()
        sink = []

        def fire(i: int) -> None:
            if i % 1024 == 0:
                sink.append(i)

        for i in range(num_events):
            # Pseudo-shuffled arrival over `distinct` shared instants.
            engine.call_after(
                ((i * 2654435761) % distinct + 1) * 1e-9, fire, i
            )
        t0 = time.perf_counter()
        engine.run()
        return time.perf_counter() - t0

    elapsed = _best_of(once, repeats)
    return {
        "events": num_events,
        "fanout": fanout,
        "distinct_timestamps": distinct,
        "wall_seconds": elapsed,
        "epoch_events_per_second": num_events / elapsed,
    }


def bench_timer_cancel(
    num_timers: int = 200_000, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Throughput of schedule + lazy O(1) cancel (timers/sec).

    Half the timers are cancelled before the engine runs; cancelled
    records are skipped (and recycled) during dispatch rather than
    sifted out of the heap.
    """

    def once() -> float:
        engine = SimEngine()

        def fire() -> None:
            pass

        t0 = time.perf_counter()
        handles = [
            engine.schedule(((i * 2654435761) % 4096) * 1e-9, fire)
            for i in range(num_timers)
        ]
        for handle in handles[::2]:
            handle.cancel()
        engine.run()
        return time.perf_counter() - t0

    elapsed = _best_of(once, repeats)
    return {
        "timers": num_timers,
        "cancelled": num_timers // 2,
        "wall_seconds": elapsed,
        "timers_per_second": num_timers / elapsed,
    }


# -- cluster-scale solver churn ------------------------------------------------


def _run_cluster_churn(
    solver: str, topology: Any, *, flows_per_link: int = 2, total_ops: int = 1024
) -> tuple[float, int]:
    """One cluster churn run; ``(wall seconds, churn flows issued)``.

    The workload is a cluster-wide ring allreduce with local churn on
    top: every xGMI link carries ``flows_per_link`` long-lived flows
    that also cross their node's two NIC rails (so the whole cluster is
    one fairshare component, bottlenecked on the 25 GB/s NICs), while
    two drivers per node issue short host-staging transfers that join
    the component through a quad link.  The long flows freeze on the
    NIC channels in the first fill round, which is exactly the regime
    dirty-set replay exploits: churn on a lightly-loaded channel
    certifies the committed rounds and re-levels a frontier of one.

    ``solver`` picks the fairshare strategy (``"dirty"`` replay +
    epoch deferral vs ``"full"`` per-event component re-solve); the
    timed region — churn plus the allreduce teardown — is identical
    work under both, so the wall ratio is the optimization's speedup.
    """
    from ..topology.link import LinkEndpoint

    engine = SimEngine()
    network = FlowNetwork(engine, incremental=True, solver=solver)
    for link in topology.links():
        network.add_channel(("link", link.name), link.capacity_per_direction)

    nodes = topology.num_gcds // 8
    if nodes > 1:
        spines = [
            (
                "link",
                topology.require_link(
                    LinkEndpoint.numa(4 * n),
                    LinkEndpoint.numa(4 * ((n + 1) % nodes)),
                ).name,
            )
            for n in range(nodes)
        ]
    else:
        spines = [("link", topology.link_between(0, 1).name)]

    for n in range(nodes):
        rails = dict.fromkeys((spines[n], spines[n - 1]))
        for link in topology.xgmi_links():
            if not (8 * n <= link.a.index < 8 * (n + 1)):
                continue
            for _ in range(flows_per_link):
                network.transfer(
                    [("link", link.name), *rails], 10**6 * GiB
                )

    drivers = 2 * nodes
    ops_per_driver = max(4, total_ops // drivers)

    def driver(n: int, gcd: int) -> Generator:
        cpu = ("link", topology.cpu_link_of_gcd(gcd).name)
        quad = ("link", topology.link_between(gcd, gcd + 1).name)
        for i in range(ops_per_driver):
            size = (1 + ((i * 37 + gcd) % 5)) * MiB
            flow = network.transfer([cpu, quad], size, cap=20 * GiB)
            yield flow.done

    for n in range(nodes):
        engine.process(driver(n, 8 * n), name=f"churn{n}a")
        engine.process(driver(n, 8 * n + 4), name=f"churn{n}b")
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0, drivers * ops_per_driver


def bench_solver_scaling(
    node_counts: tuple[int, ...] = (2, 4, 16, 64), *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Dirty-set vs full-component re-level across cluster sizes.

    Sweeps :func:`~repro.topology.presets.mi250x_cluster` from 16 to
    512 GCDs (``node_counts`` × 8; the preset refuses single-node
    "clusters") and reports per-size churn
    throughput under both solver strategies.  ``rows[-1]`` (the largest
    cluster) is surfaced as the ``flow_churn_large`` headline; its
    ``speedup`` is the acceptance number — the dirty-set path must stay
    O(affected) while the full re-level grows with the component.
    """
    from ..topology.presets import mi250x_cluster

    rows: list[dict[str, Any]] = []
    for nodes in node_counts:
        topology = mi250x_cluster(nodes=nodes)
        walls: dict[str, float] = {}
        ops = 0
        for solver in ("dirty", "full"):
            best = float("inf")
            for _ in range(max(1, repeats)):
                wall, ops = _run_cluster_churn(solver, topology)
                best = min(best, wall)
            walls[solver] = best
        rows.append(
            {
                "nodes": nodes,
                "gcds": topology.num_gcds,
                "churn_flows": ops,
                "dirty_wall_seconds": walls["dirty"],
                "full_wall_seconds": walls["full"],
                "dirty_flows_per_second": ops / walls["dirty"],
                "full_flows_per_second": ops / walls["full"],
                "speedup": walls["full"] / walls["dirty"],
            }
        )
    return {"node_counts": list(node_counts), "rows": rows}


def flow_churn_large_from_scaling(scaling: dict[str, Any]) -> dict[str, Any]:
    """The largest-cluster row of the scaling sweep, as a headline block."""
    largest = max(scaling["rows"], key=lambda row: row["gcds"])
    return {
        "gcds": largest["gcds"],
        "churn_flows": largest["churn_flows"],
        "flows_per_second": largest["dirty_flows_per_second"],
        "full_flows_per_second": largest["full_flows_per_second"],
        "speedup_vs_full": largest["speedup"],
    }


# -- fair-share flow churn -----------------------------------------------------


def _run_churn(
    incremental: bool,
    pairs: int,
    flows_per_pair: int,
    metrics: Any = None,
    spans: Any = None,
) -> float:
    """One churn run: ``pairs`` concurrent back-to-back flow chains.

    Each pair owns a private two-channel route; every seventh flow also
    crosses a shared backbone channel, so most arrivals re-level a
    small component while some couple many pairs — the mixed regime the
    fabric model produces.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry` or ``None``) is threaded
    into the engine and network so the same workload can measure
    observability overhead; ``spans`` (a
    :class:`~repro.obs.spans.SpanRecorder` or ``None``) likewise opens
    one span per flow to measure the span layer's cost.
    """
    engine = SimEngine(metrics=metrics)
    network = FlowNetwork(
        engine, incremental=incremental, metrics=metrics, spans=spans
    )
    backbone = "backbone"
    network.add_channel(backbone, 200 * GiB)
    for pair in range(pairs):
        network.add_channel(("up", pair), 100 * GiB)
        network.add_channel(("down", pair), 100 * GiB)

    def driver(pair: int) -> Generator:
        for i in range(flows_per_pair):
            channels = [("up", pair), ("down", pair)]
            if i % 7 == 0:
                channels.append(backbone)
            size = (1 + ((i * 37 + pair) % 5)) * MiB
            span = (
                spans.begin("flow", "churn", start=engine.now)
                if spans
                else None
            )
            flow = network.transfer(channels, size, cap=80 * GiB, span=span)
            yield flow.done
            if span is not None:
                spans.finish(span, engine.now)

    for pair in range(pairs):
        engine.process(driver(pair), name=f"pair{pair}")
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0


def bench_flow_churn(
    pairs: int = 32, flows_per_pair: int = 120, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Incremental vs batch re-solve under flow churn.

    ``speedup`` is the headline acceptance number: wall time of the
    legacy full-re-solve network over the incremental one on identical
    workloads.
    """
    total_flows = pairs * flows_per_pair
    incremental = _best_of(
        lambda: _run_churn(True, pairs, flows_per_pair), repeats
    )
    legacy = _best_of(lambda: _run_churn(False, pairs, flows_per_pair), repeats)
    return {
        "pairs": pairs,
        "flows_per_pair": flows_per_pair,
        "total_flows": total_flows,
        "incremental_wall_seconds": incremental,
        "legacy_wall_seconds": legacy,
        "incremental_flows_per_second": total_flows / incremental,
        "legacy_flows_per_second": total_flows / legacy,
        "speedup": legacy / incremental,
    }


def _run_integration(backend: str, flows: int, transfers: int) -> tuple[float, float]:
    """One integration run; ``(wall seconds, final sim time)``.

    ``flows`` long-lived background flows sit on private channels (the
    solver's single-flow fast path, so re-levels are cheap) while a
    ticker issues ``transfers`` short transfers back to back.  Every
    arrival and completion advances the constant-rate integral and
    recomputes the next-completion ETA over *all* live flows — the
    O(active flows) interval work the vectorized backends turn into
    one array statement.
    """
    engine = SimEngine()
    network = FlowNetwork(engine, backend=backend)
    for i in range(flows):
        network.add_channel(("bg", i), 1 * GiB)
    network.add_channel("ticker", 100 * GiB)
    for i in range(flows):
        network.transfer([("bg", i)], 1_000 * GiB, label=f"bg{i}")

    def ticker() -> Generator:
        for i in range(transfers):
            flow = network.transfer(["ticker"], (1 + i % 7) * MiB)
            yield flow.done

    engine.process(ticker(), name="ticker")
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0, engine.now


def bench_flow_integration(
    flows: int = 256, transfers: int = 2_000, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Vectorized vs per-flow-loop constant-rate interval integration.

    Runs the identical workload under every available backend
    (``python`` always, ``vectorized``/``compiled`` as resolvable) and
    reports per-backend throughput.  ``speedup`` — best backend over
    ``python`` — is the acceptance headline; ``identical_final_time``
    double-checks the bit-identity contract on this workload (the
    hypothesis differential suite is the real guarantee).
    """
    from ..sim.backends import resolve_backend

    backends = ["python"]
    for candidate in ("vectorized", "compiled"):
        if resolve_backend(candidate).effective == candidate:
            backends.append(candidate)
    walls: dict[str, float] = {}
    finals: dict[str, float] = {}
    for backend in backends:
        best = float("inf")
        for _ in range(max(1, repeats)):
            wall, final = _run_integration(backend, flows, transfers)
            best = min(best, wall)
        walls[backend] = best
        finals[backend] = final
    accelerated = [w for b, w in walls.items() if b != "python"]
    return {
        "flows": flows,
        "transfers": transfers,
        "backends": backends,
        "wall_seconds": walls,
        "transfers_per_second": {
            backend: transfers / wall for backend, wall in walls.items()
        },
        # speedup = 1.0 on numpy-less machines where only the scalar
        # loop ran (check_bench skips the floor via fastest_backend).
        "speedup": walls["python"] / min(accelerated) if accelerated else 1.0,
        "fastest_backend": min(walls, key=walls.__getitem__),
        "identical_final_time": len(set(finals.values())) == 1,
    }


def _interleaved_best_of(
    variants: dict[str, Callable[[], float]], repeats: int
) -> dict[str, float]:
    """Best-of timing with warm-up and order alternation.

    Overhead benchmarks compare near-identical workloads, so harness
    bias dominates real differences unless (a) every variant runs once
    untimed first — the process's first run pays allocator growth and
    code-object warm-up, which used to land entirely on whichever
    variant went first and produced *negative* overhead for the rest —
    and (b) the measured visiting order alternates per repeat, so
    slow machine-load drift hits all variants symmetrically.
    """
    names = list(variants)
    for name in names:  # warm-up, discarded
        variants[name]()
    best = dict.fromkeys(names, float("inf"))
    for repeat in range(max(1, repeats)):
        order = names if repeat % 2 == 0 else list(reversed(names))
        for name in order:
            best[name] = min(best[name], variants[name]())
    return best


def bench_metrics_overhead(
    pairs: int = 32, flows_per_pair: int = 120, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Cost of the observability layer on the flow-churn workload.

    Runs the identical incremental-churn workload three ways: with the
    shared disabled registry (the default every hot path takes), with a
    freshly constructed disabled registry, and with metrics enabled.
    ``disabled_overhead`` is the acceptance number — a disabled
    registry must stay within a few percent of the default path,
    because *every* simulation pays the ``if metrics:`` guard.
    Timings go through :func:`_interleaved_best_of` so the ratios
    measure the guard, not harness warm-up order.
    """
    from ..obs.metrics import MetricsRegistry

    total_flows = pairs * flows_per_pair
    best = _interleaved_best_of(
        {
            "baseline": lambda: _run_churn(True, pairs, flows_per_pair),
            "disabled": lambda: _run_churn(
                True,
                pairs,
                flows_per_pair,
                metrics=MetricsRegistry(enabled=False, sample_capacity=0),
            ),
            "enabled": lambda: _run_churn(
                True, pairs, flows_per_pair, metrics=MetricsRegistry()
            ),
        },
        repeats,
    )
    return {
        "pairs": pairs,
        "flows_per_pair": flows_per_pair,
        "total_flows": total_flows,
        "baseline_wall_seconds": best["baseline"],
        "disabled_wall_seconds": best["disabled"],
        "enabled_wall_seconds": best["enabled"],
        "disabled_overhead": best["disabled"] / best["baseline"] - 1.0,
        "enabled_overhead": best["enabled"] / best["baseline"] - 1.0,
    }


def bench_span_overhead(
    pairs: int = 32, flows_per_pair: int = 120, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Cost of the causal-span layer on the flow-churn workload.

    Same structure as :func:`bench_metrics_overhead`: baseline (no
    recorder), a disabled recorder (the ``if spans:`` guard every flow
    pays), and an enabled recorder (span per flow + solver bottleneck
    tracking + per-interval blame accounting).  ``disabled_overhead``
    is the acceptance number — spans off must stay within a few
    percent of the uninstrumented path.
    """
    from ..obs.spans import SpanRecorder

    total_flows = pairs * flows_per_pair
    best = _interleaved_best_of(
        {
            "baseline": lambda: _run_churn(True, pairs, flows_per_pair),
            "disabled": lambda: _run_churn(
                True,
                pairs,
                flows_per_pair,
                spans=SpanRecorder(enabled=False),
            ),
            "enabled": lambda: _run_churn(
                True, pairs, flows_per_pair, spans=SpanRecorder()
            ),
        },
        repeats,
    )
    return {
        "pairs": pairs,
        "flows_per_pair": flows_per_pair,
        "total_flows": total_flows,
        "baseline_wall_seconds": best["baseline"],
        "disabled_wall_seconds": best["disabled"],
        "enabled_wall_seconds": best["enabled"],
        "disabled_overhead": best["disabled"] / best["baseline"] - 1.0,
        "enabled_overhead": best["enabled"] / best["baseline"] - 1.0,
    }


def _run_capacity_churn(pairs: int, changes: int) -> float:
    """One capacity-churn run: re-level live components ``changes`` times.

    The network carries one long-lived flow per pair (every third also
    crossing a shared backbone, so some changes couple many pairs); a
    driver then walks the channels changing capacities in a
    deterministic pseudo-random pattern — the workload fault injection
    produces (link degrades/heals) at benchmark density.  Capacities
    stay in [0.5, 0.99] × healthy so no flow ever fails or starves.
    """
    engine = SimEngine()
    network = FlowNetwork(engine, incremental=True)
    backbone = "backbone"
    network.add_channel(backbone, 200 * GiB)
    for pair in range(pairs):
        network.add_channel(("up", pair), 100 * GiB)
        network.add_channel(("down", pair), 100 * GiB)
    for pair in range(pairs):
        channels = [("up", pair), ("down", pair)]
        if pair % 3 == 0:
            channels.append(backbone)
        network.transfer(channels, 10 * GiB, cap=80 * GiB)

    def churner() -> Generator:
        for i in range(changes):
            pair = (i * 2654435761) % pairs
            side = "up" if i % 2 == 0 else "down"
            factor = 0.5 + ((i * 37) % 50) / 100.0
            network.set_capacity((side, pair), 100 * GiB * factor)
            yield engine.timeout(1e-6)

    engine.process(churner(), name="churner")
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0


def bench_set_capacity(
    pairs: int = 32, changes: int = 20_000, *, repeats: int = REPEATS
) -> dict[str, Any]:
    """Throughput of dynamic capacity changes on a loaded network.

    ``capacity_changes_per_second`` is the acceptance number for the
    fault-injection path: every :meth:`FlowNetwork.set_capacity` call
    re-levels the touched component incrementally, so this must stay
    within the same order as flow churn, not degrade to batch re-solve
    cost.
    """
    elapsed = _best_of(lambda: _run_capacity_churn(pairs, changes), repeats)
    return {
        "pairs": pairs,
        "changes": changes,
        "wall_seconds": elapsed,
        "capacity_changes_per_second": changes / elapsed,
    }


# -- figure sweep ---------------------------------------------------------------


def bench_figure_sweep(*, smoke: bool = False) -> dict[str, Any]:
    """Wall time of a representative slice of the figure pipeline."""
    from ..bench_suites.comm_scope import h2d_sweep, peer_sweep

    if smoke:
        h2d_sizes = [4 * MiB]
        peer_sizes = [4 * MiB]
        interfaces = ("pinned_memcpy",)
    else:
        h2d_sizes = [1 * MiB, 16 * MiB, 256 * MiB, 1 * GiB]
        peer_sizes = [1 * MiB, 64 * MiB, 1 * GiB]
        interfaces = ("pinned_memcpy", "managed_zerocopy", "managed_migration")

    t0 = time.perf_counter()
    h2d = h2d_sweep(interfaces, h2d_sizes)
    peer = peer_sweep(sizes=peer_sizes)
    elapsed = time.perf_counter() - t0
    return {
        "measurements": len(h2d) + len(peer),
        "wall_seconds": elapsed,
    }


# -- sweep runner ---------------------------------------------------------------


def _parallel_workload(smoke: bool):
    from ..bench_suites.comm_scope import h2d_points, peer_points

    if smoke:
        sizes = [4 * MiB, 64 * MiB]
        interfaces = ("pinned_memcpy", "managed_zerocopy")
    else:
        sizes = [1 * MiB, 16 * MiB, 256 * MiB, 1 * GiB]
        interfaces = (
            "pageable_memcpy",
            "pinned_memcpy",
            "managed_zerocopy",
            "managed_migration",
        )
    return h2d_points(interfaces, sizes) + peer_points(sizes=sizes)


def bench_sweep_parallel(*, jobs: int | None = None) -> dict[str, Any]:
    """Serial vs multi-process sweep over one uncached point grid.

    ``speedup`` is an acceptance number only when ``jobs > 1`` actually
    ran (single-core machines and sandboxes without multiprocessing
    fall back to serial; ``parallel_fallbacks`` records that).  The
    grid is full-size even under ``--smoke`` — a too-small grid would
    measure pool start-up, not sweep throughput.
    """
    from ..runner import SweepRunner

    points = _parallel_workload(False)
    if jobs is None:
        jobs = min(4, os.cpu_count() or 1)
    serial = SweepRunner(jobs=1, use_cache=False)
    t0 = time.perf_counter()
    serial_outputs = serial.run_points(points)
    serial_wall = time.perf_counter() - t0
    parallel = SweepRunner(jobs=jobs, use_cache=False)
    t0 = time.perf_counter()
    parallel_outputs = parallel.run_points(points)
    parallel_wall = time.perf_counter() - t0
    return {
        "points": len(points),
        "jobs": jobs,
        "cores": os.cpu_count() or 1,
        "parallel_fallbacks": parallel.stats.parallel_fallbacks,
        "serial_wall_seconds": serial_wall,
        "parallel_wall_seconds": parallel_wall,
        "speedup": serial_wall / max(parallel_wall, 1e-9),
        "identical_outputs": serial_outputs == parallel_outputs,
    }


def bench_shadow_replay(
    *, smoke: bool = False, repeats: int = REPEATS
) -> dict[str, Any]:
    """Windowed digital-twin replay throughput (``repro shadow``).

    Synthesizes fig06 telemetry once (outside the timed region), then
    replays it in event-time windows measuring end-to-end ledger
    assembly: record→point mapping, re-simulation, drift attribution
    along routed paths.  ``shadow_replay_windows_per_second`` is the
    acceptance number — shadow mode must keep up with a telemetry
    feed, not lag it.
    """
    from ..twin.replay import shadow_replay
    from ..twin.synthesize import synthesize_telemetry

    stream = synthesize_telemetry("fig06")
    window_count = 4 if smoke else 16
    window = stream.span / window_count
    windows = len(stream.windows(window))

    def run() -> float:
        t0 = time.perf_counter()
        report = shadow_replay(stream, window=window)
        elapsed = time.perf_counter() - t0
        assert report.max_abs_drift == 0.0  # synthetic round trip is exact
        return elapsed

    elapsed = _best_of(run, repeats)
    return {
        "records": len(stream),
        "windows": windows,
        "window_seconds": window,
        "wall_seconds": elapsed,
        "records_per_second": len(stream) / elapsed,
        "shadow_replay_windows_per_second": windows / elapsed,
    }


def bench_serve(*, smoke: bool = False) -> dict[str, Any]:
    """Concurrent what-if load against a live ``repro serve`` instance.

    Delegates to :func:`repro.serve.loadtest.run_load_test`: a real
    ``ThreadingHTTPServer`` on an ephemeral port takes a barrier-released
    wave of concurrent what-if submissions (200 clients in the full
    suite — the acceptance scale — 48 under ``--smoke``), then the same
    wave again warm, then an over-quota burst.  The harness itself
    asserts the service properties (zero warm misses, bit-identical
    warm results, 429+Retry-After under burst); the suite records the
    warm wave's sustained request rate and p99 latency as headlines.
    """
    from ..serve.loadtest import run_load_test

    return run_load_test(clients=48 if smoke else 200)


def bench_cache_hit(*, smoke: bool = False) -> dict[str, Any]:
    """Cold vs warm sweep against a throwaway result cache."""
    from ..runner import ResultCache, SweepRunner

    points = _parallel_workload(smoke)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold_runner = SweepRunner(jobs=1, cache=ResultCache(tmp))
        t0 = time.perf_counter()
        cold_outputs = cold_runner.run_points(points)
        cold_wall = time.perf_counter() - t0
        warm_runner = SweepRunner(jobs=1, cache=ResultCache(tmp))
        t0 = time.perf_counter()
        warm_outputs = warm_runner.run_points(points)
        warm_wall = time.perf_counter() - t0
    return {
        "points": len(points),
        "cold_wall_seconds": cold_wall,
        "warm_wall_seconds": warm_wall,
        "speedup": cold_wall / max(warm_wall, 1e-9),
        "warm_hits": warm_runner.stats.cache_hits,
        "identical_outputs": cold_outputs == warm_outputs,
    }


# -- suite ---------------------------------------------------------------------


#: ``(headline key, results section, key within the section)`` — the
#: headline block is assembled from whichever sections actually ran.
_HEADLINE_SPEC: tuple[tuple[str, str, str], ...] = (
    ("events_per_second", "engine_events", "events_per_second"),
    ("epoch_events_per_second", "engine_epochs", "epoch_events_per_second"),
    ("flow_integration_speedup", "flow_integration", "speedup"),
    (
        "incremental_flows_per_second",
        "flow_churn",
        "incremental_flows_per_second",
    ),
    ("churn_speedup_vs_batch_resolve", "flow_churn", "speedup"),
    (
        "capacity_changes_per_second",
        "set_capacity",
        "capacity_changes_per_second",
    ),
    (
        "churn_large_flows_per_second",
        "flow_churn_large",
        "flows_per_second",
    ),
    ("churn_large_speedup_vs_full", "flow_churn_large", "speedup_vs_full"),
    ("metrics_disabled_overhead", "metrics_overhead", "disabled_overhead"),
    ("metrics_enabled_overhead", "metrics_overhead", "enabled_overhead"),
    ("spans_disabled_overhead", "span_overhead", "disabled_overhead"),
    ("spans_enabled_overhead", "span_overhead", "enabled_overhead"),
    ("figure_sweep_seconds", "figure_sweep", "wall_seconds"),
    ("sweep_parallel_speedup", "sweep_parallel", "speedup"),
    ("cache_hit_speedup", "cache_hit", "speedup"),
    (
        "shadow_replay_windows_per_second",
        "shadow_replay",
        "shadow_replay_windows_per_second",
    ),
    ("serve_requests_per_second", "serve", "serve_requests_per_second"),
    ("serve_whatif_p99_ms", "serve", "serve_whatif_p99_ms"),
)


def suite_sections(
    *, smoke: bool = False, repeats: int | None = None
) -> dict[str, Callable[[], dict[str, Any]]]:
    """Name → thunk for every suite section (the ``--only`` vocabulary)."""
    if repeats is None:
        repeats = 1 if smoke else REPEATS
    scale = 10 if smoke else 1
    shrink = 4 if smoke else 1
    return {
        "engine_events": lambda: bench_engine_events(
            200_000 // scale, repeats=repeats
        ),
        "engine_epochs": lambda: bench_engine_epochs(
            200_000 // scale, repeats=repeats
        ),
        "timer_cancel": lambda: bench_timer_cancel(
            200_000 // scale, repeats=repeats
        ),
        "flow_integration": lambda: bench_flow_integration(
            256 // shrink, 2_000 // scale, repeats=repeats
        ),
        "flow_churn": lambda: bench_flow_churn(
            32 // shrink, 120 // shrink, repeats=repeats
        ),
        "metrics_overhead": lambda: bench_metrics_overhead(
            32 // shrink, 120 // shrink, repeats=repeats
        ),
        "span_overhead": lambda: bench_span_overhead(
            32 // shrink, 120 // shrink, repeats=repeats
        ),
        "set_capacity": lambda: bench_set_capacity(
            32 // shrink, 20_000 // scale, repeats=repeats
        ),
        # Smoke stops at the CI-sized 128-GCD cluster; the full suite
        # sweeps to 512 GCDs (the acceptance point for dirty-set
        # re-leveling).
        "solver_scaling": lambda: bench_solver_scaling(
            (2, 16) if smoke else (2, 4, 16, 64), repeats=repeats
        ),
        "figure_sweep": lambda: bench_figure_sweep(smoke=smoke),
        "sweep_parallel": lambda: bench_sweep_parallel(),
        "cache_hit": lambda: bench_cache_hit(smoke=smoke),
        "shadow_replay": lambda: bench_shadow_replay(
            smoke=smoke, repeats=repeats
        ),
        "serve": lambda: bench_serve(smoke=smoke),
    }


def run_suite(
    *,
    smoke: bool = False,
    repeats: int | None = None,
    only: "list[str] | tuple[str, ...] | None" = None,
) -> dict[str, Any]:
    """Run the microbenchmarks; returns the ``BENCH_core.json`` payload.

    Reports are diff-friendly: results and headline floats are rounded
    to :data:`ROUND_DIGITS` places, and the only run-specific values
    (timestamp, platform string) live under ``meta`` so two reports of
    the same code can be compared by everything outside that block.

    ``only`` restricts the run to the named sections (CI smoke uses
    ``only=["solver_scaling"]``); the headline block then carries just
    the keys those sections feed, and ``check_bench.py`` skips the
    rest.  Unknown names raise ``ValueError`` listing the vocabulary.
    """
    from .. import __version__

    sections = suite_sections(smoke=smoke, repeats=repeats)
    selected = list(sections)
    if only is not None:
        unknown = [name for name in only if name not in sections]
        if unknown:
            known = ", ".join(sections)
            raise ValueError(
                f"unknown benchmark(s) {', '.join(unknown)} (known: {known})"
            )
        selected = [name for name in sections if name in set(only)]
    results = {name: sections[name]() for name in selected}
    if "solver_scaling" in results:
        results["flow_churn_large"] = flow_churn_large_from_scaling(
            results["solver_scaling"]
        )
    headline = {
        key: results[section][field]
        for key, section, field in _HEADLINE_SPEC
        if section in results
    }
    report = {
        "schema": "repro-bench-core/8",
        "version": __version__,
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "smoke": smoke,
        "results": _round_floats(results),
        "headline": _round_floats(headline),
        "meta": {
            "created_unix": time.time(),
            "platform": platform.platform(),
        },
    }
    if only is not None:
        report["only"] = selected
    return report


def write_report(path: str, report: dict[str, Any]) -> None:
    """Serialize a suite report to ``path`` as indented JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a (possibly partial) report."""
    results = report["results"]
    formatters: tuple[tuple[str, Callable[[dict[str, Any]], str]], ...] = (
        (
            "engine_events",
            lambda r: f"  event dispatch   {r['events_per_second']:>12,.0f} events/s",
        ),
        (
            "engine_epochs",
            lambda r: f"  epoch dispatch   {r['epoch_events_per_second']:>12,.0f} events/s "
            f"(fanout {r['fanout']})",
        ),
        (
            "timer_cancel",
            lambda r: f"  timer cancel     {r['timers_per_second']:>12,.0f} timers/s",
        ),
        (
            "flow_integration",
            lambda r: f"  flow integration {r['speedup']:>12.2f} x "
            f"({r['fastest_backend']} over python, {r['flows']} flows)",
        ),
        (
            "flow_churn",
            lambda r: f"  flow churn       {r['incremental_flows_per_second']:>12,.0f} flows/s "
            f"(incremental; {r['speedup']:.2f}x vs batch re-solve)",
        ),
        (
            "set_capacity",
            lambda r: f"  capacity churn   {r['capacity_changes_per_second']:>12,.0f} changes/s "
            f"({r['pairs']} pairs)",
        ),
        (
            "flow_churn_large",
            lambda r: f"  cluster churn    {r['flows_per_second']:>12,.0f} flows/s "
            f"({r['gcds']} GCDs; {r['speedup_vs_full']:.1f}x vs full re-level)",
        ),
        (
            "metrics_overhead",
            lambda r: f"  metrics overhead {r['disabled_overhead']:>12.1%} disabled "
            f"/ {r['enabled_overhead']:+.1%} enabled",
        ),
        (
            "span_overhead",
            lambda r: f"  span overhead    {r['disabled_overhead']:>12.1%} disabled "
            f"/ {r['enabled_overhead']:+.1%} enabled",
        ),
        (
            "figure_sweep",
            lambda r: f"  figure sweep     {r['wall_seconds']:>12.2f} s "
            f"({r['measurements']} measurements)",
        ),
        (
            "sweep_parallel",
            lambda r: f"  sweep parallel   {r['speedup']:>12.2f} x "
            f"({r['jobs']} job(s) over {r['points']} points)",
        ),
        (
            "cache_hit",
            lambda r: f"  cache hit        {r['speedup']:>12.2f} x "
            f"(warm over cold, {r['points']} points)",
        ),
        (
            "shadow_replay",
            lambda r: f"  shadow replay    {r['shadow_replay_windows_per_second']:>12,.1f} windows/s "
            f"({r['records']} records, {r['windows']} windows)",
        ),
        (
            "serve",
            lambda r: f"  serve (warm)     {r['serve_requests_per_second']:>12,.1f} req/s "
            f"(p99 {r['serve_whatif_p99_ms']:,.0f} ms, {r['clients']} clients; "
            f"{r['burst']['rejected']}/{r['burst']['sent']} burst 429s)",
        ),
    )
    lines = [
        f"simulation-core performance ({report['python']}, "
        + ("smoke)" if report["smoke"] else "full)"),
        "",
    ]
    for section, fmt in formatters:
        if section in results:
            lines.append(fmt(results[section]))
    return "\n".join(lines)

"""Simulation-core performance harness (``repro perf``).

Microbenchmarks for the hot paths of the DES core — event dispatch,
timer cancellation, fair-share re-solving under flow churn — plus a
figure-sweep macro timing.  ``run_suite`` produces the dictionary
serialized to ``BENCH_core.json``; ``main`` backs the CLI subcommand.
"""

from .core import (
    bench_engine_events,
    bench_flow_churn,
    bench_figure_sweep,
    bench_timer_cancel,
    run_suite,
    write_report,
)

__all__ = [
    "bench_engine_events",
    "bench_flow_churn",
    "bench_figure_sweep",
    "bench_timer_cancel",
    "run_suite",
    "write_report",
]

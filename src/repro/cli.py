"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproducible artifacts (tables/figures).
``run <artifact> [...]``
    Run one or more artifact drivers and print the paper-style report.
``methodology [steps...]``
    Run the three-step methodology (default: all steps).
``topology``
    Print the Fig. 1 node description and link inventory.
``calibration``
    Print the calibration profile with provenance summary.
``scenarios``
    List the what-if scenarios available for ablations.
``perf``
    Benchmark the simulation core itself (events/sec, flow churn,
    figure-sweep wall time); ``-o BENCH_core.json`` writes the report.
``cache``
    Inspect (``show``) or empty (``clear``) the on-disk result cache.
``trace <artifact> --out trace.json``
    Run one artifact observed and export a Perfetto/Chrome trace
    (slices per GCD/engine/collective, per-link GB/s counter tracks,
    provenance in ``otherData``).
``report <artifact> [-o report.html] [--json report.json]``
    Run one artifact with causal spans on and write a self-contained
    run report: critical-path blame table, per-link utilization,
    validation PASS/FAIL lines, provenance.
``explain <artifact> [--span ID]``
    Run one artifact with spans on and print the ranked critical-path
    blame breakdown ("why did this take 840 µs").
``inject <artifact> --scenario chaos.json [--seedless] [--explain]``
    Chaos run: replay a fault scenario (timed link failures/
    degradations, SDMA stalls, page-migration storms) against an
    artifact and print its paper-style report under faults.  Faulted
    results are cached under the scenario's fingerprint; ``--seedless``
    bypasses the cache entirely.  ``--explain`` reruns with spans on
    and prints the blame table, where injected faults appear as
    ``fault:*`` buckets.

``shadow --telemetry FILE [--window SECONDS] [--json]``
    Digital-twin shadow mode: replay a ``repro-telemetry/1`` stream
    through the simulator and report per-link/per-tier/per-interface
    drift (predicted vs measured).  Exits non-zero when any ledger
    dimension drifts past ``--alert-threshold``.
``calibrate --telemetry FILE [--out profile.json]``
    Fit the calibration profile's efficiency constants to a telemetry
    stream (deterministic coordinate descent) and optionally write the
    fitted ``repro-calibration/1`` profile with provenance.

Artifact commands accept either registry ids (``fig11``) or driver
module names (``fig11_collectives``).

The sweep commands — ``run``, ``methodology``, ``validate``,
``report``, ``explain`` and ``inject`` — share one option vocabulary
(each flag spelled the same way everywhere): ``--jobs N`` (worker
processes; ``0``/``auto`` = all cores), ``--no-cache``,
``--cache-stats``, ``--backend {python,vectorized,compiled}`` (flow
hot-loop implementation — bit-identical results, see
``docs/modeling.md`` §13), ``--metrics``, ``--scenario FILE`` (run
under a fault scenario), ``--topology FILE`` (run on a
``repro-topology/1`` file or preset name), ``--algorithm NAME``
(collective algorithm: ring/tree/double_binary_tree/hierarchical_ring/
auto), and ``--json [FILE]`` (machine-readable output to FILE or
stdout).  The sweep runner decomposes each artifact
into independent sim points, reuses cached point results, and
reassembles bit-identical reports regardless of job count or backend.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Sequence

from .core.calibration import DEFAULT_CALIBRATION
from .core.methodology import STEPS, Methodology
from .core.whatif import SCENARIOS, get_scenario
from .topology.presets import frontier_node


def _jobs_arg(value: str) -> int | str:
    """``--jobs`` values: a worker count, or ``auto`` for all cores."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"jobs must be an integer or 'auto', got {value!r}"
        ) from None


# Shared option vocabularies, as argparse parent parsers.  Every sweep
# command composes the same four parents, so a flag is spelled (and
# help-texted) once and behaves identically everywhere.


def _runner_options() -> argparse.ArgumentParser:
    """``--jobs/--no-cache/--cache-stats`` parent parser."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        metavar="N",
        help="worker processes for the sweep (0 or 'auto' = all cores)",
    )
    parent.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )
    parent.add_argument(
        "--cache-stats",
        action="store_true",
        help="print sweep-runner cache statistics afterwards",
    )
    return parent


def _backend_options() -> argparse.ArgumentParser:
    """``--backend`` parent parser (sweep commands and ``perf``)."""
    from .sim.backends import BACKENDS

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help=(
            "flow-integration hot loop (default: $REPRO_BACKEND or "
            "'vectorized'); results are bit-identical across backends"
        ),
    )
    return parent


def _obs_options() -> argparse.ArgumentParser:
    """``--metrics`` parent parser."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "capture per-point simulation metrics (engine/link/engine-"
            "occupancy counters) and print the aggregate afterwards"
        ),
    )
    return parent


def _scenario_options() -> argparse.ArgumentParser:
    """``--scenario FILE`` parent parser (fault injection)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        dest="fault_scenario",
        help="run under a fault scenario JSON file (repro.api.FaultScenario)",
    )
    return parent


def _topology_options() -> argparse.ArgumentParser:
    """``--topology/--algorithm`` parent parser (topology-as-data)."""
    from .rccl.algorithms import RCCL_ALGORITHMS

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--topology",
        default=None,
        metavar="FILE",
        dest="topology_spec",
        help=(
            "run every point on this topology: a repro-topology/1 "
            "JSON/YAML file (e.g. benchmarks/topologies/mi250x_node.json) "
            "or a preset name (mi250x-node, mi250x-cluster-N, ...)"
        ),
    )
    parent.add_argument(
        "--algorithm",
        choices=RCCL_ALGORITHMS + ("auto",),
        default=None,
        help=(
            "collective algorithm every communicator uses (default: the "
            "paper-faithful ring; 'auto' = RCCL-style topology-aware "
            "selection)"
        ),
    )
    return parent


def _telemetry_options() -> argparse.ArgumentParser:
    """``--telemetry FILE`` parent parser (digital-twin commands)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        dest="telemetry_path",
        help="repro-telemetry/1 JSONL stream (see repro.twin / docs §16)",
    )
    return parent


def _calibration_options() -> argparse.ArgumentParser:
    """``--calibration FILE`` parent parser (profile-as-data)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--calibration",
        default=None,
        metavar="FILE",
        dest="calibration_path",
        help=(
            "repro-calibration/1 profile JSON (e.g. written by "
            "'repro calibrate --out'); default: the built-in MI250X profile"
        ),
    )
    return parent


def _json_options() -> argparse.ArgumentParser:
    """``--json [FILE]`` parent parser (machine-readable output)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        dest="json_out",
        help=(
            "emit machine-readable results as JSON (to FILE, or stdout "
            "when no file is given)"
        ),
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Understanding Data Movement in AMD "
            "Multi-GPU Systems with Infinity Fabric' (SC 2024)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sweep_parents = [
        _runner_options(),
        _backend_options(),
        _obs_options(),
        _scenario_options(),
        _topology_options(),
        _json_options(),
    ]

    sub.add_parser("list", help="list reproducible artifacts")

    run = sub.add_parser(
        "run", help="run artifact drivers", parents=sweep_parents
    )
    run.add_argument(
        "artifacts",
        nargs="+",
        metavar="ARTIFACT",
        help="artifact ids (fig01..fig12, tab01, tab02) or 'all'",
    )
    run.add_argument(
        "-o",
        "--output-dir",
        default=None,
        help="also write each report to <dir>/<artifact>.txt",
    )
    run.add_argument(
        "--plot",
        action="store_true",
        help="append an ASCII chart to each report where applicable",
    )

    methodology = sub.add_parser(
        "methodology",
        help="run the three-step methodology",
        parents=sweep_parents,
    )
    methodology.add_argument(
        "steps",
        nargs="*",
        choices=list(STEPS) + [[]],
        metavar="STEP",
        help=f"subset of {sorted(STEPS)} (default: all)",
    )

    topology = sub.add_parser(
        "topology", help="print a node topology (default: Fig. 1 node)"
    )
    topology.add_argument(
        "spec",
        nargs="?",
        default=None,
        metavar="FILE",
        help=(
            "repro-topology/1 JSON/YAML file or preset name to describe "
            "(default: the Fig. 1 MI250X node)"
        ),
    )
    sub.add_parser("calibration", help="print the calibration profile")
    sub.add_parser("scenarios", help="list what-if scenarios")
    sub.add_parser("claims", help="list the paper claims and their tests")

    validate = sub.add_parser(
        "validate",
        help="run the system-validation battery",
        parents=sweep_parents,
    )
    validate.add_argument(
        "scenario",
        nargs="?",
        default="baseline",
        choices=sorted(SCENARIOS),
        help="what-if scenario to validate (default: baseline)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache"
    )
    cache.add_argument(
        "action",
        nargs="?",
        default="show",
        choices=("show", "clear"),
        help="show cache contents (default) or delete every entry",
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )

    trace = sub.add_parser(
        "trace",
        help="run one artifact observed and export a Perfetto/Chrome trace",
    )
    trace.add_argument(
        "artifact",
        metavar="ARTIFACT",
        help="artifact id to trace (fig01..fig12, tab01, tab02)",
    )
    trace.add_argument(
        "-o",
        "--out",
        default="trace.json",
        metavar="FILE",
        help="output trace file (default: trace.json)",
    )
    trace.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help="ring-buffer bound on retained records per point",
    )
    trace.add_argument(
        "--check",
        action="store_true",
        help="validate the written file against the trace schema and exit",
    )

    report = sub.add_parser(
        "report",
        help="run one artifact with spans on and write a run report",
        parents=sweep_parents + [_telemetry_options(), _calibration_options()],
    )
    report.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="event-time window for the --telemetry drift section",
    )
    report.add_argument(
        "artifact",
        metavar="ARTIFACT",
        help="artifact id or module name (fig11, fig11_collectives, …)",
    )
    report.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="FILE",
        help="HTML output file (default: report_<artifact>.html)",
    )
    report.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the validation battery section",
    )

    explain = sub.add_parser(
        "explain",
        help="run one artifact with spans on and print critical-path blame",
        parents=sweep_parents + [_calibration_options()],
    )
    explain.add_argument(
        "artifact",
        metavar="ARTIFACT",
        help="artifact id or module name (fig11, fig11_collectives, …)",
    )
    explain.add_argument(
        "--span",
        type=int,
        default=None,
        metavar="ID",
        help="restrict the breakdown to one span's subtree",
    )
    explain.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="blame entries to show (default: 10)",
    )

    inject = sub.add_parser(
        "inject",
        help="run one artifact under a fault scenario (chaos run)",
        parents=sweep_parents,
    )
    inject.add_argument(
        "artifact",
        metavar="ARTIFACT",
        help="artifact id or module name (fig06, fig11_collectives, …)",
    )
    inject.add_argument(
        "--seedless",
        action="store_true",
        help="deprecated alias for --no-cache",
    )
    inject.add_argument(
        "--explain",
        action="store_true",
        help="also print the critical-path blame table under the scenario",
    )
    inject.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="blame entries to show with --explain (default: 10)",
    )

    shadow = sub.add_parser(
        "shadow",
        help="replay a telemetry stream and report per-link model drift",
        parents=[
            _runner_options(),
            _backend_options(),
            _topology_options(),
            _telemetry_options(),
            _calibration_options(),
            _json_options(),
        ],
    )
    shadow.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="replay in event-time windows of this length (default: one window)",
    )
    shadow.add_argument(
        "--alert-threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="per-dimension |drift| that raises an alert (default: 0.05)",
    )
    shadow.add_argument(
        "--top",
        type=int,
        default=8,
        metavar="N",
        help="per-link rows to print (default: 8)",
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="fit calibration efficiency constants to a telemetry stream",
        parents=[
            _topology_options(),
            _telemetry_options(),
            _calibration_options(),
            _json_options(),
        ],
    )
    calibrate.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the fitted repro-calibration/1 profile JSON here",
    )
    calibrate.add_argument(
        "--fields",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "fit only this efficiency field (repeatable; default: every "
            "field the stream is sensitive to)"
        ),
    )
    calibrate.add_argument(
        "--max-passes",
        type=int,
        default=None,
        metavar="N",
        help="coordinate-descent passes over the fields (default: 4)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived HTTP simulation service",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8042,
        help="bind port (default: 8042; 0 = ephemeral, printed on start)",
    )
    serve.add_argument(
        "--workers",
        type=_jobs_arg,
        default=4,
        metavar="N",
        help="job-queue worker threads (0 or 'auto' = schedulable CPUs)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        metavar="N",
        help="bounded-queue admission limit (backpressure beyond it)",
    )
    serve.add_argument(
        "--quota-rate",
        type=float,
        default=50.0,
        metavar="PER_SECOND",
        help="per-tenant sustained submissions per second (default: 50)",
    )
    serve.add_argument(
        "--quota-burst",
        type=float,
        default=100.0,
        metavar="N",
        help="per-tenant burst allowance (token-bucket size, default: 100)",
    )
    serve.add_argument(
        "--runner-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per job's sweep (default: 1 — jobs "
        "already run concurrently on service threads)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared result store (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared result store (every job recomputes)",
    )
    serve.add_argument(
        "--verbose",
        action="store_true",
        help="log every HTTP request to stderr",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a job to a running 'repro serve' and await it",
        parents=[_json_options()],
    )
    submit.add_argument(
        "kind",
        choices=("run", "sweep", "whatif", "shadow"),
        help="endpoint to submit to (POST /v1/<kind>)",
    )
    submit.add_argument(
        "targets",
        nargs="*",
        metavar="ARTIFACT",
        help="artifact id(s): one for run / whatif, several for sweep",
    )
    submit.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="service base URL (default: $REPRO_SERVE_URL or "
        "http://127.0.0.1:8042)",
    )
    submit.add_argument(
        "--tenant",
        default=None,
        metavar="NAME",
        help="tenant the submission is charged to (X-Repro-Tenant)",
    )
    submit.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        dest="params",
        help="experiment parameter override (repeatable; VALUE parsed "
        "as JSON when possible)",
    )
    submit.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        dest="whatif_scenario",
        help="what-if scenario name (whatif submissions)",
    )
    submit.add_argument(
        "--algorithm",
        default=None,
        metavar="NAME",
        help="collective algorithm override (whatif submissions)",
    )
    submit.add_argument(
        "--topology",
        default=None,
        metavar="SPEC",
        dest="topology_spec",
        help="topology preset name or file (whatif submissions)",
    )
    submit.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        dest="telemetry_path",
        help="repro-telemetry/1 JSONL file (shadow submissions)",
    )
    submit.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="event-time replay window (shadow submissions)",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without polling",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="how long to await completion (default: 600)",
    )

    perf = sub.add_parser(
        "perf",
        help="benchmark the simulation core (events/sec, flow churn)",
        parents=[_backend_options(), _json_options()],
    )
    perf.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down run for CI smoke checks (~seconds)",
    )
    perf.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="also write the full JSON report (e.g. BENCH_core.json)",
    )
    perf.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of repetitions per microbenchmark (default: 3, smoke: 1)",
    )
    perf.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "run only the named benchmark (repeatable; e.g. "
            "--only solver_scaling); the report carries just those "
            "sections and check_bench.py skips the rest"
        ),
    )
    return parser


def _cmd_list() -> int:
    from . import figures

    for artifact_id in figures.all_ids():
        experiment = figures.SUITE.get(artifact_id)
        print(f"{artifact_id:8s} {experiment.paper_artifact:10s} {experiment.title}")
    return 0


def _make_runner(
    args: argparse.Namespace, faults: Any = None, topology: Any = None
):
    from .runner import SweepRunner

    return SweepRunner(
        args.jobs,
        use_cache=not args.no_cache,
        capture_metrics=getattr(args, "metrics", False),
        faults=faults,
        topology=topology,
        algorithm=getattr(args, "algorithm", None),
    )


def _load_topology_arg(args: argparse.Namespace):
    """Resolve ``--topology FILE|preset`` if given; ``(topology, code)``.

    Mirrors :func:`_load_fault_scenario`: a ``None`` topology with exit
    code ``None`` means "no --topology requested"; a non-``None`` code
    means resolution failed and the command should return it.
    """
    spec = getattr(args, "topology_spec", None)
    if spec is None:
        return None, None
    from .errors import ConfigurationError, TopologyError
    from .session import resolve_topology

    try:
        return resolve_topology(spec), None
    except (OSError, ConfigurationError, TopologyError, ValueError) as exc:
        print(f"error: cannot load topology: {exc}", file=sys.stderr)
        return None, 2


def _load_fault_scenario(args: argparse.Namespace):
    """Load ``--scenario FILE`` if given; ``(scenario, exit_code)``.

    A ``None`` scenario with exit code ``None`` means "no scenario
    requested"; a non-``None`` exit code means loading failed and the
    command should return it.
    """
    path = getattr(args, "fault_scenario", None)
    if path is None:
        return None, None
    from .errors import ConfigurationError
    from .faults import FaultScenario

    try:
        return FaultScenario.load(path), None
    except (OSError, ConfigurationError, ValueError) as exc:
        print(f"error: cannot load scenario: {exc}", file=sys.stderr)
        return None, 2


def _load_telemetry_arg(args: argparse.Namespace, *, required: bool = False):
    """Load ``--telemetry FILE`` if given; ``(stream, exit_code)``."""
    path = getattr(args, "telemetry_path", None)
    if path is None:
        if required:
            print(
                f"error: {args.command} requires --telemetry FILE",
                file=sys.stderr,
            )
            return None, 2
        return None, None
    from .errors import TelemetryError
    from .twin.schema import load_telemetry

    try:
        return load_telemetry(path), None
    except (OSError, TelemetryError, ValueError) as exc:
        print(f"error: cannot load telemetry: {exc}", file=sys.stderr)
        return None, 2


def _load_calibration_arg(args: argparse.Namespace):
    """Load ``--calibration FILE`` if given; ``(profile, exit_code)``."""
    path = getattr(args, "calibration_path", None)
    if path is None:
        return None, None
    from .core.calibration import load_profile
    from .errors import CalibrationError

    try:
        profile, _provenance = load_profile(path)
        return profile, None
    except (OSError, CalibrationError, ValueError) as exc:
        print(f"error: cannot load calibration: {exc}", file=sys.stderr)
        return None, 2


def _emit_json(payload: Any, json_out: str) -> None:
    """Write a ``--json`` payload to FILE, or stdout for ``-``."""
    import json

    text = json.dumps(payload, indent=1, default=str)
    if json_out == "-":
        print(text)
    else:
        with open(json_out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {json_out}")


def _print_runner_metrics(runner) -> None:
    """Render a runner's aggregated per-point metrics (``--metrics``)."""
    from .obs import format_snapshot

    print()
    if runner.stats.metrics is None:
        print(
            "no metrics captured (all points served from cache; "
            "re-run with --no-cache to re-measure)"
        )
        return
    print(format_snapshot(runner.stats.metrics))


def _cmd_run(
    artifact_ids: Sequence[str],
    output_dir: str | None = None,
    show_plot: bool = False,
    runner=None,
    cache_stats: bool = False,
    show_metrics: bool = False,
    json_out: str | None = None,
) -> int:
    from . import figures
    from .errors import BenchmarkError
    from .figures.plots import plot
    from .runner import SweepRunner

    known = figures.all_ids()
    if "all" in artifact_ids:
        artifact_ids = known
    else:
        artifact_ids = [figures.canonical_id(a) for a in artifact_ids]
    unknown = sorted(set(artifact_ids) - set(known))
    if unknown:
        print(
            f"error: unknown artifact(s): {', '.join(unknown)}\n"
            f"valid ids: {', '.join(known)} (or 'all')",
            file=sys.stderr,
        )
        return 2
    directory = None
    if output_dir is not None:
        import pathlib

        directory = pathlib.Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
    if runner is None:
        runner = SweepRunner()
    try:
        results = runner.run_many(list(artifact_ids))
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if json_out is not None:
        _emit_json(
            {
                artifact_id: results[artifact_id].canonical()
                for artifact_id in dict.fromkeys(artifact_ids)
            },
            json_out,
        )
    for artifact_id in dict.fromkeys(artifact_ids):
        result = results[artifact_id]
        text = figures.report(artifact_id, result)
        if show_plot:
            chart = plot(artifact_id, result)
            if chart is not None:
                text = text + "\n\n" + chart
        if json_out != "-":
            print(text)
            print()
        if directory is not None:
            (directory / f"{artifact_id}.txt").write_text(text + "\n")
    if cache_stats:
        print(runner.stats.describe())
    if show_metrics:
        _print_runner_metrics(runner)
    return 0


def _cmd_methodology(
    steps: Sequence[str],
    runner=None,
    cache_stats: bool = False,
    show_metrics: bool = False,
    json_out: str | None = None,
) -> int:
    methodology = Methodology(list(steps) or None)
    report = methodology.run(runner=runner)
    if json_out is not None:
        _emit_json(
            {
                artifact_id: result.canonical()
                for artifact_id, result in report.results.items()
            },
            json_out,
        )
    if json_out != "-":
        print(report.text())
    if cache_stats and runner is not None:
        print(runner.stats.describe())
    if show_metrics and runner is not None:
        _print_runner_metrics(runner)
    return 0


def _cmd_topology(spec: str | None = None) -> int:
    if spec is None:
        topology = frontier_node()
    else:
        from .errors import ConfigurationError, TopologyError
        from .session import resolve_topology

        try:
            topology = resolve_topology(spec)
        except (OSError, ConfigurationError, TopologyError, ValueError) as exc:
            print(f"error: cannot load topology: {exc}", file=sys.stderr)
            return 2
    print(topology.describe())
    print(f"fingerprint: {topology.fingerprint()}")
    print()
    print("GCD-GCD bundles:")
    for link in topology.xgmi_links():
        print(
            f"  {link.a.index}-{link.b.index}: {link.tier.name.lower():7s}"
            f" ({link.capacity_per_direction / 1e9:.0f}+"
            f"{link.capacity_per_direction / 1e9:.0f} GB/s)"
        )
    nics = sum(1 for _ in topology.nic_links())
    if nics:
        print(f"inter-node NIC rails: {nics}")
    print("GCD -> NUMA affinity:", dict(
        (g.index, g.numa_domain) for g in topology.gcds()
    ))
    return 0


def _cmd_calibration() -> int:
    print(DEFAULT_CALIBRATION.describe())
    return 0


def _cmd_scenarios() -> int:
    for name in sorted(SCENARIOS):
        scenario = get_scenario(name)
        print(f"{name:24s} {scenario.description}")
    return 0


def _cmd_perf(
    smoke: bool,
    output: str | None,
    repeats: int | None,
    only: list[str] | None = None,
    json_out: str | None = None,
) -> int:
    from .perf.core import format_report, run_suite, write_report

    try:
        report = run_suite(smoke=smoke, repeats=repeats, only=only)
    except ValueError as exc:  # unknown --only name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if json_out == "-":
        import json

        print(json.dumps(report, indent=2))
    else:
        print(format_report(report))
        if json_out is not None:
            write_report(json_out, report)
            print(f"\nwrote {json_out}")
    if output is not None:
        write_report(output, report)
        if json_out != "-":
            print(f"wrote {output}")
    return 0


def _cmd_validate(
    scenario_name: str,
    runner=None,
    cache_stats: bool = False,
    show_metrics: bool = False,
    json_out: str | None = None,
) -> int:
    from .core.validation import validate_node

    scenario = get_scenario(scenario_name)
    report = validate_node(
        scenario.topology, scenario.calibration, runner=runner
    )
    if json_out is not None:
        import json

        document = {"scenario": scenario.name, **report.as_dict()}
        text = json.dumps(document, indent=1)
        if json_out == "-":
            print(text)
        else:
            with open(json_out, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {json_out}")
    else:
        print(
            f"validating scenario {scenario.name!r}: {scenario.description}"
        )
        print(report.text())
    if cache_stats and runner is not None:
        print(runner.stats.describe())
    if show_metrics and runner is not None:
        _print_runner_metrics(runner)
    return 0 if report.passed else 1


def _cmd_trace(
    artifact: str,
    out: str,
    trace_capacity: int | None = None,
    check: bool = False,
) -> int:
    from . import obs
    from .errors import BenchmarkError

    artifact = _check_artifact(artifact)
    if artifact is None:
        return 2
    try:
        payload = obs.trace_experiment(artifact, trace_capacity=trace_capacity)
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs.write_chrome_trace(out, payload)
    slices = sum(1 for e in payload["traceEvents"] if e.get("ph") == "X")
    counters = sum(1 for e in payload["traceEvents"] if e.get("ph") == "C")
    print(
        f"wrote {out}: {slices} slice(s), {counters} counter sample(s) "
        f"— open at https://ui.perfetto.dev or chrome://tracing"
    )
    if check:
        import json

        problems = obs.validate_chrome_trace(json.loads(open(out).read()))
        if problems:
            for problem in problems:
                print(f"schema problem: {problem}", file=sys.stderr)
            return 1
        print("schema check passed")
    return 0


def _check_artifact(artifact: str) -> str | None:
    """Resolve an artifact name/alias; print an error for unknown ones."""
    from . import figures

    experiment_id = figures.canonical_id(artifact)
    known = figures.all_ids()
    if experiment_id not in known:
        print(
            f"error: unknown artifact {artifact!r}\n"
            f"valid ids: {', '.join(known)}",
            file=sys.stderr,
        )
        return None
    return experiment_id


def _cmd_report(
    artifact: str,
    out: str | None,
    json_out: str | None,
    no_validate: bool,
    jobs: int | str | None,
    faults: Any = None,
    topology: Any = None,
    algorithm: str | None = None,
    calibration_path: str | None = None,
    telemetry: Any = None,
    window: float | None = None,
) -> int:
    from . import obs
    from .errors import BenchmarkError

    experiment_id = _check_artifact(artifact)
    if experiment_id is None:
        return 2
    if out is None and json_out is None:
        out = f"report_{experiment_id}.html"
    try:
        report = obs.collect_report(
            experiment_id,
            jobs=jobs,
            validate=not no_validate,
            faults=faults,
            topology=topology,
            algorithm=algorithm,
            # The path (not the loaded profile) keeps the file's
            # provenance block in the report's calibration section.
            calibration=calibration_path,
            telemetry=telemetry,
            window=window,
        )
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if json_out == "-":
        _emit_json(report, json_out)
        json_out = None
    written = obs.write_report(report, html_path=out, json_path=json_out)
    for path in written:
        print(f"wrote {path}")
    print()
    print(report["explain"])
    cal = report.get("calibration") or {}
    line = (
        f"calibration: {cal.get('source', 'default')} "
        f"({str(cal.get('fingerprint', ''))[:12]})"
    )
    if "final_rms" in cal:
        line += f", residual RMS {float(cal['final_rms']):.3%}"
    print(line)
    drift = report.get("drift")
    if drift:
        overall = drift.get("overall") or {}
        print(
            f"shadow drift vs {drift.get('telemetry')!r}: "
            f"mean |e| {float(overall.get('mean_abs_drift', 0.0)):.3%}, "
            f"max |e| {float(drift.get('max_abs_drift', 0.0)):.3%}, "
            f"{len(drift.get('alerts') or [])} alert(s)"
        )
    validation = report.get("validation")
    if validation is not None and not validation["passed"]:
        print(
            f"validation: {validation['failed']} of {validation['total']} "
            "check(s) FAILED",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_explain(
    artifact: str,
    span_id: int | None,
    top: int,
    jobs: int | str | None,
    faults: Any = None,
    topology: Any = None,
    algorithm: str | None = None,
    json_out: str | None = None,
    calibration_path: str | None = None,
) -> int:
    from . import obs
    from .errors import BenchmarkError
    from .obs.report import calibration_block

    experiment_id = _check_artifact(artifact)
    if experiment_id is None:
        return 2
    try:
        text = obs.explain_artifact(
            experiment_id,
            span_id=span_id,
            jobs=jobs,
            top=top,
            faults=faults,
            topology=topology,
            algorithm=algorithm,
        )
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    cal = calibration_block(calibration_path)
    cal_line = (
        f"calibration: {cal.get('source', 'default')} "
        f"({str(cal.get('fingerprint', ''))[:12]})"
    )
    if "final_rms" in cal:
        cal_line += f", residual RMS {float(cal['final_rms']):.3%}"
    if json_out is not None:
        _emit_json(
            {
                "artifact": experiment_id,
                "span": span_id,
                "explain": text,
                "calibration": cal,
            },
            json_out,
        )
        if json_out == "-":
            return 0
    print(text)
    print(cal_line)
    return 0


def _cmd_inject(
    artifact: str,
    scenario: Any,
    explain: bool,
    top: int,
    runner,
    json_out: str | None = None,
) -> int:
    from . import figures, obs
    from .errors import (
        BenchmarkError,
        MpiError,
        RcclError,
        SimulationError,
    )

    experiment_id = _check_artifact(artifact)
    if experiment_id is None:
        return 2
    quiet = json_out == "-"
    if not quiet:
        print(
            f"injecting scenario {scenario.name!r} "
            f"({len(scenario)} event(s), fingerprint "
            f"{scenario.fingerprint()[:12]}) into {experiment_id}"
        )
        for line in scenario.describe().splitlines():
            print(f"  {line}")
        print()
    try:
        result = runner.run_experiment(experiment_id)
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (SimulationError, MpiError, RcclError) as exc:
        print(
            f"error: scenario {scenario.name!r} killed the run: {exc}",
            file=sys.stderr,
        )
        print(
            "hint: transfers without a RetryPolicy die when a link fails"
            " mid-flight; use link_degrade for recoverable pressure, or"
            " drive MPI/RCCL with retry= via the Session API",
            file=sys.stderr,
        )
        return 1
    if json_out is not None:
        _emit_json({experiment_id: result.canonical()}, json_out)
    if not quiet:
        print(figures.report(experiment_id, result))
        if explain:
            print()
            print(
                obs.explain_artifact(
                    experiment_id, jobs=runner.jobs, top=top, faults=scenario
                )
            )
    return 0


def _cmd_shadow(
    telemetry: Any,
    calibration: Any,
    topology: Any,
    window: float | None,
    alert_threshold: float | None,
    top: int,
    runner,
    cache_stats: bool = False,
    json_out: str | None = None,
) -> int:
    from .errors import TelemetryError
    from .twin.replay import DEFAULT_ALERT_THRESHOLD, shadow_replay

    try:
        report = shadow_replay(
            telemetry,
            topology=topology,
            calibration=calibration,
            window=window,
            alert_threshold=(
                alert_threshold
                if alert_threshold is not None
                else DEFAULT_ALERT_THRESHOLD
            ),
            runner=runner,
        )
    except TelemetryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if json_out is not None:
        _emit_json(report.to_json(), json_out)
    if json_out != "-":
        print(report.describe(top=top))
    if cache_stats and runner is not None:
        print(runner.stats.describe())
    # Drift above threshold is the condition shadow mode exists to
    # surface — make it the exit status so CI can gate on it.
    return 1 if report.alerts else 0


def _cmd_calibrate(
    telemetry: Any,
    base: Any,
    topology: Any,
    fields: list[str] | None,
    max_passes: int | None,
    out: str | None,
    json_out: str | None = None,
) -> int:
    from .core.calibration import dump_profile
    from .errors import CalibrationError, TelemetryError
    from .twin.calibrate import fit_calibration

    kwargs: dict[str, Any] = {}
    if max_passes is not None:
        kwargs["max_passes"] = max_passes
    try:
        fit = fit_calibration(
            telemetry, topology=topology, base=base, fields=fields, **kwargs
        )
    except (CalibrationError, TelemetryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if json_out is not None:
        _emit_json(fit.to_json(), json_out)
    if json_out != "-":
        print(fit.describe())
    if out is not None:
        dump_profile(fit.profile, out, provenance=fit.provenance())
        print(f"wrote {out}")
    return 0


def _cmd_cache(action: str, cache_dir: str | None = None) -> int:
    from .runner import ResultCache

    cache = ResultCache(cache_dir)
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    print(cache.describe())
    return 0


#: Default service URL the ``submit`` verb talks to.
SERVE_URL_ENV = "REPRO_SERVE_URL"
DEFAULT_SERVE_URL = "http://127.0.0.1:8042"


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServiceConfig, SimService, create_server, serve_forever

    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_limit,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        runner_jobs=args.runner_jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    try:
        service = SimService(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        server = create_server(service, host=args.host, port=args.port)
    except OSError as exc:
        print(
            f"error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        service.close()
        return 2
    server.verbose = args.verbose
    host, port = server.server_address[:2]
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"({service.queue.capacity} queue slots, "
        f"{len(service.queue._threads)} worker(s), store "
        f"{'disabled' if args.no_cache else 'shared'}); "
        f"SIGTERM drains gracefully",
        flush=True,
    )
    serve_forever(server)
    print("repro serve: drained, bye")
    return 0


def _parse_param_overrides(pairs: "Sequence[str] | None") -> dict:
    """``--param key=value`` pairs (values parsed as JSON, else str)."""
    import json

    params: dict = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"--param expects KEY=VALUE, got {pair!r}"
            )
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def _submit_payload(args: argparse.Namespace) -> dict:
    """Build the POST body for one ``repro submit`` invocation."""
    params = _parse_param_overrides(args.params)
    if args.kind == "run":
        if len(args.targets) != 1:
            raise ValueError("submit run takes exactly one artifact id")
        return {"artifact": args.targets[0], "params": params}
    if args.kind == "sweep":
        if not args.targets:
            raise ValueError("submit sweep takes one or more artifact ids")
        return {"artifacts": list(args.targets), "params": params}
    if args.kind == "whatif":
        payload: dict = {}
        if args.whatif_scenario is not None:
            payload["scenario"] = args.whatif_scenario
        if args.targets:
            if len(args.targets) != 1:
                raise ValueError("submit whatif takes at most one artifact")
            payload["artifact"] = args.targets[0]
            payload["params"] = params
            if args.topology_spec is not None:
                payload["topology"] = args.topology_spec
            if args.algorithm is not None:
                payload["algorithm"] = args.algorithm
        if not payload:
            raise ValueError(
                "submit whatif needs --scenario NAME or an artifact id"
            )
        return payload
    # shadow
    if args.telemetry_path is None:
        raise ValueError("submit shadow requires --telemetry FILE")
    with open(args.telemetry_path) as handle:
        text = handle.read()
    payload = {"telemetry": text}
    if args.window is not None:
        payload["window"] = args.window
    return payload


def _print_submit_result(kind: str, record: dict) -> None:
    """Human-readable rendering of a finished job."""
    result = record.get("result") or {}
    if kind in ("run", "whatif") and "report" in result:
        print(result["report"])
    elif kind == "sweep":
        for artifact_id in result.get("artifacts", ()):
            entry = result["results"][artifact_id]
            print(entry["report"])
            print()
    elif kind == "whatif" and "validation" in result:
        status = "PASS" if result.get("passed") else "FAIL"
        print(
            f"what-if {result.get('scenario')!r}: {status} — "
            f"{result.get('description', '')}"
        )
    elif kind == "shadow":
        shadow = result.get("shadow", {})
        overall = shadow.get("overall", {})
        print(
            f"shadow replay: {overall.get('count', 0)} record(s), "
            f"max |drift| {overall.get('max_abs_drift', 0.0):.3e}, "
            f"{len(shadow.get('alerts', []))} alert(s)"
        )
    latency = record.get("latency_seconds")
    if latency is not None:
        print(f"[job {record['id']}: {record['state']} in {latency:.3f}s]")


def _cmd_submit(args: argparse.Namespace) -> int:
    from .errors import BenchmarkError
    from .serve import JobFailedError, ServeClient, ServeError

    url = args.url or os.environ.get(SERVE_URL_ENV) or DEFAULT_SERVE_URL
    try:
        payload = _submit_payload(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServeClient(url, tenant=args.tenant, timeout=args.timeout)
    try:
        job_id = client.submit(args.kind, payload)
        if args.no_wait:
            print(f"{job_id} queued at {url}/v1/jobs/{job_id}")
            return 0
        record = client.wait(job_id, timeout=args.timeout)
    except ServeError as exc:
        hint = (
            f" (retry in {exc.retry_after:.0f}s)"
            if exc.status == 429 and exc.retry_after
            else ""
        )
        print(f"error: {exc}{hint}", file=sys.stderr)
        return 3 if exc.status == 429 else 2
    except JobFailedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json_out is not None:
        _emit_json(record, args.json_out)
    if args.json_out != "-":
        _print_submit_result(args.kind, record)
    return 0


#: Exit status for a write onto a closed pipe (``repro ... | head``):
#: 128 + SIGPIPE, the shell convention for "terminated by the reader",
#: chosen over a traceback-and-1 so pipelines behave like any other
#: Unix tool's.
SIGPIPE_EXIT = 128 + 13


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status.

    Every verb writes to stdout, and any of them can be piped to a
    reader that stops early (``repro run all --json - | head``).
    Python turns the resulting ``SIGPIPE`` into a ``BrokenPipeError``
    on write; without handling it the CLI dies with a traceback *and*
    a second exception from the interpreter's stdout flush at exit.
    Catch it once here for all verbs: swallow the error, point stdout
    at devnull so shutdown flushes cannot re-raise, and exit with the
    conventional ``128 + SIGPIPE`` status.
    """
    try:
        code = _dispatch(_build_parser().parse_args(argv))
        # Flush inside the try so a buffered write onto a closed pipe
        # surfaces here, not in the interpreter's exit machinery.
        sys.stdout.flush()
        return code
    except BrokenPipeError:
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError, AttributeError):
            # stdout may be a pytest capture or StringIO without a
            # real fd; there is nothing to redirect then.
            pass
        return SIGPIPE_EXIT


def _dispatch(args: argparse.Namespace) -> int:
    """Route parsed arguments to their command implementation."""
    # --backend travels via the environment so sweep workers (fresh
    # processes) inherit it; results are bit-identical across backends,
    # so the choice never enters cache keys.
    backend = getattr(args, "backend", None)
    if backend is not None:
        from .sim.backends import BACKEND_ENV_VAR

        os.environ[BACKEND_ENV_VAR] = backend
    if args.command == "list":
        return _cmd_list()
    if args.command in {"run", "methodology", "validate", "inject"}:
        scenario, error = _load_fault_scenario(args)
        if error is not None:
            return error
        topology, error = _load_topology_arg(args)
        if error is not None:
            return error
    if args.command == "run":
        return _cmd_run(
            args.artifacts,
            args.output_dir,
            args.plot,
            runner=_make_runner(args, faults=scenario, topology=topology),
            cache_stats=args.cache_stats,
            show_metrics=args.metrics,
            json_out=args.json_out,
        )
    if args.command == "methodology":
        return _cmd_methodology(
            args.steps,
            runner=_make_runner(args, faults=scenario, topology=topology),
            cache_stats=args.cache_stats,
            show_metrics=args.metrics,
            json_out=args.json_out,
        )
    if args.command == "topology":
        return _cmd_topology(args.spec)
    if args.command == "calibration":
        return _cmd_calibration()
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "claims":
        from .core.claims import format_claims

        print(format_claims())
        return 0
    if args.command == "validate":
        return _cmd_validate(
            args.scenario,
            runner=_make_runner(args, faults=scenario, topology=topology),
            cache_stats=args.cache_stats,
            show_metrics=args.metrics,
            json_out=args.json_out,
        )
    if args.command == "trace":
        return _cmd_trace(
            args.artifact, args.out, args.trace_capacity, args.check
        )
    if args.command == "report":
        scenario, error = _load_fault_scenario(args)
        if error is not None:
            return error
        topology, error = _load_topology_arg(args)
        if error is not None:
            return error
        telemetry, error = _load_telemetry_arg(args)
        if error is not None:
            return error
        _, error = _load_calibration_arg(args)  # validate the file early
        if error is not None:
            return error
        return _cmd_report(
            args.artifact,
            args.out,
            args.json_out,
            args.no_validate,
            args.jobs,
            faults=scenario,
            topology=topology,
            algorithm=args.algorithm,
            calibration_path=args.calibration_path,
            telemetry=telemetry,
            window=args.window,
        )
    if args.command == "explain":
        scenario, error = _load_fault_scenario(args)
        if error is not None:
            return error
        topology, error = _load_topology_arg(args)
        if error is not None:
            return error
        _, error = _load_calibration_arg(args)  # validate the file early
        if error is not None:
            return error
        return _cmd_explain(
            args.artifact,
            args.span,
            args.top,
            args.jobs,
            faults=scenario,
            topology=topology,
            algorithm=args.algorithm,
            json_out=args.json_out,
            calibration_path=args.calibration_path,
        )
    if args.command == "inject":
        if scenario is None:
            print(
                "error: inject requires --scenario FILE", file=sys.stderr
            )
            return 2
        if args.seedless:
            args.no_cache = True
        return _cmd_inject(
            args.artifact,
            scenario,
            args.explain,
            args.top,
            runner=_make_runner(args, faults=scenario, topology=topology),
            json_out=args.json_out,
        )
    if args.command == "shadow":
        telemetry, error = _load_telemetry_arg(args, required=True)
        if error is not None:
            return error
        calibration, error = _load_calibration_arg(args)
        if error is not None:
            return error
        topology, error = _load_topology_arg(args)
        if error is not None:
            return error
        from .runner import SweepRunner

        runner = SweepRunner(args.jobs, use_cache=not args.no_cache)
        return _cmd_shadow(
            telemetry,
            calibration,
            topology,
            args.window,
            args.alert_threshold,
            args.top,
            runner,
            cache_stats=args.cache_stats,
            json_out=args.json_out,
        )
    if args.command == "calibrate":
        telemetry, error = _load_telemetry_arg(args, required=True)
        if error is not None:
            return error
        base, error = _load_calibration_arg(args)
        if error is not None:
            return error
        topology, error = _load_topology_arg(args)
        if error is not None:
            return error
        return _cmd_calibrate(
            telemetry,
            base,
            topology,
            args.fields,
            args.max_passes,
            args.out,
            json_out=args.json_out,
        )
    if args.command == "perf":
        return _cmd_perf(
            args.smoke,
            args.output,
            args.repeats,
            only=args.only,
            json_out=args.json_out,
        )
    if args.command == "cache":
        return _cmd_cache(args.action, args.cache_dir)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

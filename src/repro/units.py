"""Units and quantity helpers.

The paper (footnote 3) uses decimal units for rates: ``1 GB/s = 1e9
bytes/s``.  Transfer *sizes* in the benchmark sweeps, however, are
binary (4 KiB, 1 MiB, 1 GiB) as in CommScope and the OSU suite.  This
module provides both families explicitly so no call site ever has to
guess, plus parsing and pretty-printing used by the report layer.

All simulation times are kept in **seconds** as floats; helpers exist
for microseconds and nanoseconds because the paper quotes latencies in
microseconds.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Iterator

# --- byte sizes -----------------------------------------------------------

#: Binary size units (sizes of buffers, messages, pages).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Decimal size units (marketing-style capacities).
KB = 1_000
MB = 1_000 * KB
GB = 1_000 * MB

# --- rates (paper convention: decimal) ------------------------------------

#: 1 GB/s as used throughout the paper: 1e9 bytes per second.
GBps = 1e9
MBps = 1e6

# --- times -----------------------------------------------------------------

SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9


def us(value: float) -> float:
    """Convert a value in microseconds to seconds."""
    return value * MICROSECOND


def ns(value: float) -> float:
    """Convert a value in nanoseconds to seconds."""
    return value * NANOSECOND


def to_us(seconds: float) -> float:
    """Convert a time in seconds to microseconds."""
    return seconds / MICROSECOND


def gbps(value: float) -> float:
    """Convert a rate in GB/s (decimal) to bytes/s."""
    return value * GBps


def to_gbps(bytes_per_second: float) -> float:
    """Convert a rate in bytes/s to GB/s (decimal, paper convention)."""
    return bytes_per_second / GBps


_SIZE_SUFFIXES = {
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": 1_000 * GB,
    "KIB": KiB,
    "MIB": MiB,
    "GIB": GiB,
    "TIB": 1024 * GiB,
    # Benchmark shorthand: bare K/M/G are binary, matching OSU/CommScope.
    "K": KiB,
    "M": MiB,
    "G": GiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse a human-readable size like ``"64MiB"`` or ``"4 KB"`` to bytes.

    Integers pass through unchanged.  Bare ``K``/``M``/``G`` suffixes are
    binary, matching the conventions of the OSU and CommScope harnesses.

    >>> parse_size("4K")
    4096
    >>> parse_size("1GB")
    1000000000
    """
    if isinstance(text, int):
        return text
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"unparsable size: {text!r}")
    value = float(match.group(1))
    suffix = match.group(2).upper()
    if suffix == "":
        suffix = "B"
    try:
        scale = _SIZE_SUFFIXES[suffix]
    except KeyError:
        raise ValueError(f"unknown size suffix in {text!r}") from None
    result = value * scale
    if not math.isfinite(result) or result < 0:
        raise ValueError(f"invalid size: {text!r}")
    return int(round(result))


def format_size(nbytes: int) -> str:
    """Format a byte count with binary units, as the paper's x-axes do.

    >>> format_size(4096)
    '4KiB'
    >>> format_size(8 * GiB)
    '8GiB'
    """
    if nbytes < 0:
        raise ValueError("size must be non-negative")
    for unit, scale in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if nbytes >= scale and nbytes % scale == 0:
            return f"{nbytes // scale}{unit}"
        if nbytes >= scale:
            return f"{nbytes / scale:.2f}{unit}"
    return f"{nbytes}B"


def format_rate(bytes_per_second: float) -> str:
    """Format a rate in the paper's decimal GB/s convention.

    >>> format_rate(28.3e9)
    '28.3 GB/s'
    """
    return f"{to_gbps(bytes_per_second):.1f} GB/s"


def format_time(seconds: float) -> str:
    """Format a duration with an auto-selected unit (µs for latencies)."""
    if seconds < 0:
        raise ValueError("time must be non-negative")
    if seconds == 0:
        return "0s"
    if seconds < 1e-6:
        return f"{seconds / NANOSECOND:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds / MICROSECOND:.1f}us"
    if seconds < 1.0:
        return f"{seconds / MILLISECOND:.2f}ms"
    return f"{seconds:.3f}s"


def pow2_sizes(start: int, stop: int) -> Iterator[int]:
    """Yield powers of two from ``start`` to ``stop`` inclusive.

    Both endpoints must themselves be powers of two; this mirrors the
    size sweeps of CommScope (4 KiB … 1 GiB) and OSU.

    >>> list(pow2_sizes(4*KiB, 16*KiB))
    [4096, 8192, 16384]
    """
    if start <= 0 or stop <= 0:
        raise ValueError("sweep endpoints must be positive")
    if start & (start - 1) or stop & (stop - 1):
        raise ValueError("sweep endpoints must be powers of two")
    if start > stop:
        raise ValueError("empty sweep: start > stop")
    size = start
    while size <= stop:
        yield size
        size <<= 1


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used when summarising bandwidth series."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    log_sum = sum(math.log(v) for v in values)
    return math.exp(log_sum / len(values))

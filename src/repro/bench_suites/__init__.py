"""Reimplementations of the paper's benchmark suites (Table II).

Each module mirrors one of the tools the paper runs, with the same
measurement logic (allocation kinds, sweep ranges, timing loops),
driving the simulated HIP/MPI/RCCL stack instead of hardware:

- :mod:`repro.bench_suites.comm_scope` — CommScope [12]: host-to-
  device bandwidth per interface, NUMA-pinned variants, peer copies.
- :mod:`repro.bench_suites.stream` — the STREAM-copy-based benchmarks,
  including Listing 1's multi-GPU CPU-GPU variant.
- :mod:`repro.bench_suites.p2p_matrix` — the HIPified
  p2pBandwidthLatencyTest [13]: all-pairs latency/bandwidth matrices.
- :mod:`repro.bench_suites.osu` — OSU micro-benchmarks [14]: MPI
  point-to-point bandwidth and collective latency.
- :mod:`repro.bench_suites.rccl_tests` — rccl-tests: RCCL collective
  latency with one thread per GPU.
"""

from . import comm_scope, osu, p2p_matrix, rccl_tests, stream

__all__ = ["comm_scope", "stream", "p2p_matrix", "osu", "rccl_tests"]

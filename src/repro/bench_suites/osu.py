"""OSU micro-benchmarks (MVAPICH suite, version 7.4 in the paper).

Two tools are reproduced:

- ``osu_bw`` — point-to-point bandwidth: rank 0 posts a window of
  non-blocking sends of one message size to rank 1 and waits; the
  paper runs it GPU-to-GPU at 1 GiB (Fig. 10).
- ``osu_<collective>`` — collective latency: iterations of a
  collective at a fixed message size with barriers between, reporting
  the average per-iteration latency (Fig. 11's MPI series).

Both bind one MPI rank per GCD, as the paper's Slurm scripts do.
"""

from __future__ import annotations

from typing import Generator, Sequence

from ..config import SimEnvironment
from ..core.calibration import CalibrationProfile
from ..core.experiment import ExperimentResult
from ..core.sweep import OSU_COLLECTIVE_BYTES, OSU_P2P_BYTES, PARTNER_COUNTS
from ..errors import BenchmarkError
from ..mpi.collectives import COLLECTIVES
from ..mpi.comm import MpiWorld, RankContext
from ..runner import SimPoint, SweepRunner, execute_points
from ..session import Session
from ..topology.node import NodeTopology

#: osu_bw window size (number of in-flight sends per iteration).
BW_WINDOW = 4
#: Measured iterations (deterministic simulator: small counts suffice).
BW_ITERATIONS = 2
COLLECTIVE_ITERATIONS = 3
COLLECTIVE_WARMUP = 1


def _world(
    rank_gcds: Sequence[int],
    topology: NodeTopology | None,
    calibration: CalibrationProfile | None,
    env: SimEnvironment | None,
) -> MpiWorld:
    session = Session(topology, calibration=calibration, env=env)
    return session.mpi_world(rank_gcds)


def osu_bw(
    src_gcd: int,
    dst_gcd: int,
    *,
    message_bytes: int = OSU_P2P_BYTES,
    sdma_enabled: bool = True,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """GPU-to-GPU MPI bandwidth (bytes/s), MPI_Isend/MPI_Recv."""
    if src_gcd == dst_gcd:
        raise BenchmarkError("osu_bw requires two distinct GCDs")
    env = SimEnvironment(sdma_enabled=sdma_enabled)
    world = _world([src_gcd, dst_gcd], topology, calibration, env)

    def rank_main(ctx: RankContext) -> Generator:
        buffer = ctx.hip.malloc(message_bytes, label=f"osu-bw-r{ctx.rank}")
        # Warm-up exchange: first-touch IPC mapping happens here, as in
        # the real benchmark's skipped iterations.
        if ctx.rank == 0:
            yield from ctx.send(buffer, 1, tag=99)
        else:
            yield from ctx.recv(buffer, 0, tag=99)
        yield from ctx.barrier()
        t0 = ctx.now
        total = 0
        for _iteration in range(BW_ITERATIONS):
            if ctx.rank == 0:
                requests = [
                    ctx.isend(buffer, 1, tag=i) for i in range(BW_WINDOW)
                ]
                for request in requests:
                    yield from request.wait()
            else:
                requests = [
                    ctx.irecv(buffer, 0, tag=i) for i in range(BW_WINDOW)
                ]
                for request in requests:
                    yield from request.wait()
            total += BW_WINDOW * message_bytes
        elapsed = ctx.now - t0
        return total / elapsed

    return world.run(rank_main)[0]


def osu_latency(
    src_gcd: int,
    dst_gcd: int,
    *,
    message_bytes: int = 8,
    iterations: int = 10,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """``osu_latency``: half round-trip time of a ping-pong (seconds).

    Small messages ride the eager path; large ones pay the rendezvous
    handshake — the crossover at ``mpi_eager_threshold`` is visible in
    a size sweep.
    """
    if src_gcd == dst_gcd:
        raise BenchmarkError("osu_latency requires two distinct GCDs")
    world = _world([src_gcd, dst_gcd], topology, calibration, None)

    def rank_main(ctx: RankContext) -> Generator:
        buffer = ctx.hip.malloc(max(message_bytes, 1), label=f"lat-r{ctx.rank}")
        # Warm-up ping-pong (maps IPC handles).
        if ctx.rank == 0:
            yield from ctx.send(buffer, 1, tag=0, nbytes=message_bytes)
            yield from ctx.recv(buffer, 1, tag=0, nbytes=message_bytes)
        else:
            yield from ctx.recv(buffer, 0, tag=0, nbytes=message_bytes)
            yield from ctx.send(buffer, 0, tag=0, nbytes=message_bytes)
        yield from ctx.barrier()
        t0 = ctx.now
        for i in range(iterations):
            if ctx.rank == 0:
                yield from ctx.send(buffer, 1, tag=i + 1, nbytes=message_bytes)
                yield from ctx.recv(buffer, 1, tag=i + 1, nbytes=message_bytes)
            else:
                yield from ctx.recv(buffer, 0, tag=i + 1, nbytes=message_bytes)
                yield from ctx.send(buffer, 0, tag=i + 1, nbytes=message_bytes)
        return (ctx.now - t0) / (2 * iterations)

    return world.run(rank_main)[0]


def osu_bibw(
    src_gcd: int,
    dst_gcd: int,
    *,
    message_bytes: int = OSU_P2P_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    sdma_enabled: bool = True,
) -> float:
    """``osu_bibw``: bidirectional bandwidth (bytes/s, both directions).

    Both ranks send simultaneously; with per-direction SDMA engines the
    two streams overlap and the sum approaches twice ``osu_bw``.
    """
    if src_gcd == dst_gcd:
        raise BenchmarkError("osu_bibw requires two distinct GCDs")
    env = SimEnvironment(sdma_enabled=sdma_enabled)
    world = _world([src_gcd, dst_gcd], topology, calibration, env)

    def rank_main(ctx: RankContext) -> Generator:
        send = ctx.hip.malloc(message_bytes, label=f"bibw-s{ctx.rank}")
        recv = ctx.hip.malloc(message_bytes, label=f"bibw-r{ctx.rank}")
        partner = 1 - ctx.rank
        yield from ctx.sendrecv(send, partner, recv, partner, tag=99)
        yield from ctx.barrier()
        t0 = ctx.now
        yield from ctx.sendrecv(send, partner, recv, partner, tag=1)
        return 2 * message_bytes / (ctx.now - t0)

    return max(world.run(rank_main))


def osu_mbw_mr(
    pairs: Sequence[tuple[int, int]],
    *,
    message_bytes: int = 256 * 2**20,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """``osu_mbw_mr``: aggregate bandwidth of concurrent rank pairs.

    Exercises fabric contention: pairs whose routes share links split
    the capacity, pairs on disjoint links scale linearly.
    """
    if not pairs:
        raise BenchmarkError("need at least one pair")
    rank_gcds: list[int] = []
    for a, b in pairs:
        rank_gcds.extend((a, b))
    if len(set(rank_gcds)) != len(rank_gcds):
        raise BenchmarkError("pairs must use distinct GCDs")
    world = _world(rank_gcds, topology, calibration, None)
    num_pairs = len(pairs)

    def rank_main(ctx: RankContext) -> Generator:
        buffer = ctx.hip.malloc(message_bytes, label=f"mbw-r{ctx.rank}")
        partner = ctx.rank + 1 if ctx.rank % 2 == 0 else ctx.rank - 1
        # Warm-up.
        if ctx.rank % 2 == 0:
            yield from ctx.send(buffer, partner, tag=0)
        else:
            yield from ctx.recv(buffer, partner, tag=0)
        yield from ctx.barrier()
        t0 = ctx.now
        if ctx.rank % 2 == 0:
            yield from ctx.send(buffer, partner, tag=1)
        else:
            yield from ctx.recv(buffer, partner, tag=1)
        yield from ctx.barrier()
        return ctx.now - t0

    elapsed = max(world.run(rank_main))
    return num_pairs * message_bytes / elapsed


def osu_bw_sweep(
    src_gcd: int = 0,
    dst_gcds: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    *,
    message_bytes: int = OSU_P2P_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> ExperimentResult:
    """Fig. 10's MPI series: both SDMA settings, GCD0 → all others."""
    result = ExperimentResult(
        "fig10_mpi", f"OSU MPI p2p bandwidth from GCD{src_gcd} (1 GiB)"
    )
    for dst in dst_gcds:
        for sdma in (True, False):
            bandwidth = osu_bw(
                src_gcd,
                dst,
                message_bytes=message_bytes,
                sdma_enabled=sdma,
                topology=topology,
                calibration=calibration,
            )
            result.add(
                dst,
                bandwidth,
                "B/s",
                sdma="enabled" if sdma else "disabled",
                dst=dst,
            )
    return result


def osu_collective_latency(
    collective: str,
    num_partners: int,
    *,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
    iterations: int = COLLECTIVE_ITERATIONS,
    warmup: int = COLLECTIVE_WARMUP,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """Average latency (seconds) of one MPI collective.

    One rank per GCD, GCDs 0..n-1 (rccl-tests and the paper's OSU runs
    enumerate devices in order).  Latency is the max across ranks per
    iteration, averaged over iterations — OSU's reporting convention.
    """
    if collective not in COLLECTIVES:
        raise BenchmarkError(
            f"unknown collective {collective!r}; known: {sorted(COLLECTIVES)}"
        )
    if num_partners < 2:
        raise BenchmarkError("collectives need at least two partners")
    fn = COLLECTIVES[collective]
    world = _world(list(range(num_partners)), topology, calibration, None)

    def rank_main(ctx: RankContext) -> Generator:
        send = ctx.hip.malloc(message_bytes, label=f"osu-send-r{ctx.rank}")
        recv = ctx.hip.malloc(message_bytes, label=f"osu-recv-r{ctx.rank}")

        def invoke() -> Generator:
            if collective == "broadcast":
                yield from fn(ctx, send, message_bytes)
            else:
                yield from fn(ctx, send, recv, message_bytes)

        for _ in range(warmup):
            yield from invoke()
        total = 0.0
        for _ in range(iterations):
            yield from ctx.barrier()
            t0 = ctx.now
            yield from invoke()
            total += ctx.now - t0
        return total / iterations

    per_rank = world.run(rank_main)
    return max(per_rank)


def collective_points(
    collectives: Sequence[str] | None = None,
    partner_counts: Sequence[int] = PARTNER_COUNTS,
    *,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    experiment_id: str = "fig11_mpi",
) -> list[SimPoint]:
    """The MPI collective grid decomposed into independent sim points."""
    if collectives is None:
        # The paper's five; alltoall is an extension outside Fig. 11.
        collectives = [
            "allgather",
            "allreduce",
            "broadcast",
            "reduce",
            "reduce_scatter",
        ]
    return [
        SimPoint.make(
            experiment_id,
            f"mpi/{collective}/{partners}",
            "repro.bench_suites.osu:osu_collective_latency",
            collective=collective,
            num_partners=partners,
            message_bytes=message_bytes,
            topology=topology,
            calibration=calibration,
        )
        for collective in collectives
        for partners in partner_counts
    ]


def collective_latency_sweep(
    collectives: Sequence[str] | None = None,
    partner_counts: Sequence[int] = PARTNER_COUNTS,
    *,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Fig. 11's MPI series: five collectives × 2–8 partners."""
    points = collective_points(
        collectives,
        partner_counts,
        message_bytes=message_bytes,
        topology=topology,
        calibration=calibration,
    )
    return collective_result(points, execute_points(points, runner))


def collective_result(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    *,
    experiment_id: str = "fig11_mpi",
    title: str = "OSU MPI collective latency (1 MiB)",
) -> ExperimentResult:
    """Assemble the MPI collective grid result from point outputs."""
    result = ExperimentResult(experiment_id, title)
    for point, latency in zip(points, outputs):
        kwargs = point.kwargs
        result.add(
            kwargs["num_partners"],
            latency,
            "s",
            collective=kwargs["collective"],
            partners=kwargs["num_partners"],
            library="MPI",
        )
    return result

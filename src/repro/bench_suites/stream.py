"""STREAM-copy-based benchmarks.

Three variants the paper uses (Table II):

- **local** — ``hipMalloc`` buffers, local kernel access: the
  1400 GB/s HBM reference of §V-B.
- **remote (zero-copy)** — kernel on one GCD, both buffers on a peer
  (Fig. 8/9) or on the host (Table II's pinned zero-copy row).
- **multi-GPU CPU-GPU** — Listing 1: one kernel per GCD over
  host-pinned buffers, total bidirectional bandwidth (Fig. 4/5).
"""

from __future__ import annotations

from typing import Generator, Sequence

from ..config import SimEnvironment, placement_for_strategy
from ..core.calibration import CalibrationProfile
from ..core.experiment import ExperimentResult
from ..core.sweep import MULTI_GPU_STREAM_BYTES, STREAM_REMOTE
from ..errors import BenchmarkError
from ..hip.runtime import HipRuntime
from ..runner import SimPoint, SweepRunner, execute_points
from ..session import Session
from ..topology.node import NodeTopology


def _runtime(
    topology: NodeTopology | None,
    calibration: CalibrationProfile | None,
    env: SimEnvironment | None = None,
) -> HipRuntime:
    return Session(topology, calibration=calibration, env=env).hip


def local_stream_copy(
    gcd: int = 0,
    size: int = MULTI_GPU_STREAM_BYTES,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """Local STREAM copy bandwidth, counted as 2·S/t (bytes/s)."""
    hip = _runtime(topology, calibration)
    hip.set_device(gcd)

    def run() -> Generator:
        a = hip.malloc(size)
        b = hip.malloc(size)
        t0 = hip.now
        yield hip.launch_stream_copy(b, a)
        return 2 * size / (hip.now - t0)

    return hip.run(run())


def remote_stream_copy(
    executor_gcd: int,
    data_gcd: int,
    size: int,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """Bidirectional zero-copy bandwidth: kernel on ``executor_gcd``,
    both buffers on ``data_gcd`` (Fig. 8's setup), as 2·S/t."""
    if executor_gcd == data_gcd:
        raise BenchmarkError("remote stream requires distinct GCDs")
    hip = _runtime(topology, calibration)
    hip.enable_all_peer_access()

    def run() -> Generator:
        a = hip.malloc(size, device=data_gcd)
        b = hip.malloc(size, device=data_gcd)
        t0 = hip.now
        yield hip.launch_stream_copy(b, a, device=executor_gcd)
        return 2 * size / (hip.now - t0)

    return hip.run(run())


def remote_stream_points(
    executor_gcd: int = 0,
    data_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    experiment_id: str = "fig08",
) -> list[SimPoint]:
    """The Fig. 8 sweep decomposed into independent sim points."""
    if sizes is None:
        sizes = STREAM_REMOTE.sizes()
    return [
        SimPoint.make(
            experiment_id,
            f"remote/{executor_gcd}<-{data_gcd}/{size}",
            "repro.bench_suites.stream:remote_stream_copy",
            executor_gcd=executor_gcd,
            data_gcd=data_gcd,
            size=size,
            topology=topology,
            calibration=calibration,
        )
        for data_gcd in data_gcds
        for size in sizes
    ]


def remote_stream_sweep(
    executor_gcd: int = 0,
    data_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """The Fig. 8 sweep: three link tiers, sizes up to 8 GB."""
    points = remote_stream_points(
        executor_gcd, data_gcds, sizes, topology=topology, calibration=calibration
    )
    return remote_stream_result(
        points, execute_points(points, runner), executor_gcd=executor_gcd
    )


def remote_stream_result(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    *,
    executor_gcd: int = 0,
) -> ExperimentResult:
    """Assemble the Fig. 8 sweep result from point outputs (in order)."""
    result = ExperimentResult(
        "fig08",
        f"Bidirectional STREAM copy on GCD{executor_gcd}, remote placement",
    )
    for point, bandwidth in zip(points, outputs):
        kwargs = point.kwargs
        result.add(
            kwargs["size"], bandwidth, "B/s", data_gcd=kwargs["data_gcd"]
        )
    return result


def direct_p2p_read(
    executor_gcd: int,
    peer_gcd: int,
    size: int,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """Unidirectional direct-P2P: copy *from peer to local* memory.

    The "direct P2P" reference series of Fig. 10: the kernel reads the
    peer buffer over the fabric and writes locally, so the link carries
    payload in one direction only.  Counted as S/t.
    """
    if executor_gcd == peer_gcd:
        raise BenchmarkError("direct P2P requires distinct GCDs")
    hip = _runtime(topology, calibration)
    hip.enable_all_peer_access()

    def run() -> Generator:
        src = hip.malloc(size, device=peer_gcd)
        dst = hip.malloc(size, device=executor_gcd)
        t0 = hip.now
        yield hip.launch_stream_copy(dst, src, device=executor_gcd)
        return size / (hip.now - t0)

    return hip.run(run())


def host_zero_copy_stream(
    gcd: int = 0,
    size: int = MULTI_GPU_STREAM_BYTES,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """Single-GCD CPU-GPU zero-copy STREAM (Table II row), 2·S/t."""
    return multi_gpu_cpu_stream(
        [gcd], size, topology=topology, calibration=calibration
    )


def multi_gpu_cpu_stream(
    placement: Sequence[int],
    size: int = MULTI_GPU_STREAM_BYTES,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """Listing 1: one STREAM copy kernel per GCD over host-pinned
    buffers; total bidirectional bandwidth ``N_GPU · 2N / t``."""
    if not placement:
        raise BenchmarkError("placement must select at least one GCD")
    if len(set(placement)) != len(placement):
        raise BenchmarkError("duplicate GCDs in placement")
    hip = _runtime(topology, calibration)

    def run() -> Generator:
        buffers = {}
        for gcd in placement:
            hip.set_device(gcd)
            a = hip.host_malloc(size, device=gcd, label=f"a{gcd}")
            b = hip.host_malloc(size, device=gcd, label=f"b{gcd}")
            # init_array on the GPU, as in Listing 1 (not timed).
            yield hip.launch_init_array(a, device=gcd)
            buffers[gcd] = (a, b)
        t0 = hip.now
        events = [
            hip.launch_stream_copy(b, a, device=gcd)
            for gcd, (a, b) in buffers.items()
        ]
        yield hip.engine.all_of(events)
        elapsed = hip.now - t0
        return len(placement) * 2 * size / elapsed

    return hip.run(run())


def dual_gcd_cases() -> dict[str, tuple[int, ...]]:
    """The Fig. 4 placement cases, in paper order."""
    return {
        "1 GCD": (0,),
        "2 GCDs (same GPU)": tuple(placement_for_strategy("same_gpu", 2)),
        "2 GCDs (spread)": tuple(placement_for_strategy("spread", 2)),
    }


def dual_gcd_points(
    size: int = MULTI_GPU_STREAM_BYTES,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    experiment_id: str = "fig04",
) -> list[SimPoint]:
    """The Fig. 4 cases decomposed into independent sim points."""
    return [
        SimPoint.make(
            experiment_id,
            f"dual/{'-'.join(map(str, placement))}",
            "repro.bench_suites.stream:multi_gpu_cpu_stream",
            placement=placement,
            size=size,
            topology=topology,
            calibration=calibration,
        )
        for placement in dual_gcd_cases().values()
    ]


def dual_gcd_experiment(
    size: int = MULTI_GPU_STREAM_BYTES,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Fig. 4: one GCD vs two GCDs, same-GPU vs spread placement."""
    points = dual_gcd_points(size, topology=topology, calibration=calibration)
    return dual_gcd_result(points, execute_points(points, runner))


def dual_gcd_result(
    points: Sequence[SimPoint], outputs: Sequence[float]
) -> ExperimentResult:
    """Assemble the Fig. 4 result from point outputs (in order)."""
    result = ExperimentResult(
        "fig04", "CPU-GPU STREAM: 1 GCD vs 2 GCDs (same GPU / spread)"
    )
    for label, bandwidth, point in zip(dual_gcd_cases(), outputs, points):
        placement = point.kwargs["placement"]
        result.add(
            len(placement), bandwidth, "B/s", case=label, placement=placement
        )
    return result


def scaling_points(
    gcd_counts: Sequence[int] = (1, 2, 4, 8),
    size: int = MULTI_GPU_STREAM_BYTES,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    experiment_id: str = "fig05",
) -> list[SimPoint]:
    """The Fig. 5 scaling curve decomposed into independent sim points."""
    return [
        SimPoint.make(
            experiment_id,
            f"scaling/{count}",
            "repro.bench_suites.stream:multi_gpu_cpu_stream",
            placement=tuple(placement_for_strategy("spread", count)),
            size=size,
            topology=topology,
            calibration=calibration,
        )
        for count in gcd_counts
    ]


def scaling_experiment(
    gcd_counts: Sequence[int] = (1, 2, 4, 8),
    size: int = MULTI_GPU_STREAM_BYTES,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Fig. 5: spread-placement scaling from 1 to 8 GCDs."""
    points = scaling_points(
        gcd_counts, size, topology=topology, calibration=calibration
    )
    return scaling_result(points, execute_points(points, runner))


def scaling_result(
    points: Sequence[SimPoint], outputs: Sequence[float]
) -> ExperimentResult:
    """Assemble the Fig. 5 result from point outputs (in order)."""
    result = ExperimentResult(
        "fig05", "CPU-GPU STREAM scaling, spread placement"
    )
    for point, bandwidth in zip(points, outputs):
        placement = point.kwargs["placement"]
        result.add(
            len(placement), bandwidth, "B/s", placement=placement
        )
    return result

"""HIPified p2pBandwidthLatencyTest (Fig. 6).

Reproduces the three matrices of Fig. 6:

- hop counts of the shortest path between all GCD pairs (6a),
- latency of a 16-byte ``hipMemcpyPeerAsync`` timed with HIP events,
  averaged over repetitions (6b),
- unidirectional large-transfer bandwidth (6c).

As in the original tool, memory comes from ``hipMalloc`` on both ends
and peer access is enabled first.
"""

from __future__ import annotations

from typing import Generator, Sequence

from ..config import SimEnvironment
from ..core.calibration import CalibrationProfile
from ..core.experiment import ExperimentResult
from ..errors import BenchmarkError
from ..runner import SimPoint, SweepRunner, execute_points
from ..session import Session
from ..topology.node import NodeTopology
from ..topology.context import resolve_default as resolve_default_topology
from ..topology.routing import all_pairs_hops
from ..units import MiB

#: Transfer size of the latency test (paper §V-A1: 16 bytes).
LATENCY_TRANSFER_BYTES = 16
#: Repetitions of the latency measurement (paper: 100).
LATENCY_REPETITIONS = 100
#: Transfer size of the bandwidth matrix test.
BANDWIDTH_TRANSFER_BYTES = 256 * MiB


def hop_matrix(
    topology: NodeTopology | None = None,
) -> dict[tuple[int, int], int]:
    """Fig. 6a: shortest-path hop counts."""
    return all_pairs_hops(resolve_default_topology(topology))


def measure_pair_latency(
    src_gcd: int,
    dst_gcd: int,
    *,
    repetitions: int = LATENCY_REPETITIONS,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    env: SimEnvironment | None = None,
) -> float:
    """Average latency (seconds) of a 16 B hipMemcpyPeerAsync.

    Timed GPU-side with the HIP event API on the copy stream, exactly
    as the paper describes (§V-A1).
    """
    if src_gcd == dst_gcd:
        raise BenchmarkError("latency test requires distinct GCDs")
    if repetitions <= 0:
        raise BenchmarkError("need at least one repetition")
    hip = Session(topology, calibration=calibration, env=env).hip
    hip.enable_all_peer_access()

    def run() -> Generator:
        src = hip.malloc(LATENCY_TRANSFER_BYTES, device=src_gcd)
        dst = hip.malloc(LATENCY_TRANSFER_BYTES, device=dst_gcd)
        stream = hip.stream_create(device=src_gcd)
        total = 0.0
        for _ in range(repetitions):
            start_event = hip.event_create()
            stop_event = hip.event_create()
            start_event.record(stream)
            hip.memcpy_peer_async(
                dst, dst_gcd, src, src_gcd, LATENCY_TRANSFER_BYTES, stream
            )
            stop_event.record(stream)
            yield from stream.synchronize()
            total += stop_event.elapsed_since(start_event)
        return total / repetitions

    return hip.run(run())


def measure_pair_bandwidth(
    src_gcd: int,
    dst_gcd: int,
    *,
    size: int = BANDWIDTH_TRANSFER_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    env: SimEnvironment | None = None,
) -> float:
    """Unidirectional hipMemcpyPeer bandwidth (bytes/s) for one pair."""
    if src_gcd == dst_gcd:
        raise BenchmarkError("bandwidth test requires distinct GCDs")
    hip = Session(topology, calibration=calibration, env=env).hip
    hip.enable_all_peer_access()

    def run() -> Generator:
        src = hip.malloc(size, device=src_gcd)
        dst = hip.malloc(size, device=dst_gcd)
        t0 = hip.now
        yield from hip.memcpy_peer(dst, dst_gcd, src, src_gcd)
        return size / (hip.now - t0)

    return hip.run(run())


def latency_matrix(
    *,
    repetitions: int = 3,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    env: SimEnvironment | None = None,
) -> dict[tuple[int, int], float]:
    """Fig. 6b: all-pairs latency (seconds).

    The simulator is deterministic, so a handful of repetitions gives
    the same average as the paper's 100; callers can raise it.
    """
    node_topology = resolve_default_topology(topology)
    indices = [g.index for g in node_topology.gcds()]
    matrix: dict[tuple[int, int], float] = {}
    for src in indices:
        for dst in indices:
            if src == dst:
                continue
            matrix[(src, dst)] = measure_pair_latency(
                src,
                dst,
                repetitions=repetitions,
                topology=node_topology,
                calibration=calibration,
                env=env,
            )
    return matrix


def bandwidth_matrix(
    *,
    size: int = BANDWIDTH_TRANSFER_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    env: SimEnvironment | None = None,
) -> dict[tuple[int, int], float]:
    """Fig. 6c: all-pairs unidirectional bandwidth (bytes/s)."""
    node_topology = resolve_default_topology(topology)
    indices = [g.index for g in node_topology.gcds()]
    matrix: dict[tuple[int, int], float] = {}
    for src in indices:
        for dst in indices:
            if src == dst:
                continue
            matrix[(src, dst)] = measure_pair_bandwidth(
                src,
                dst,
                size=size,
                topology=node_topology,
                calibration=calibration,
                env=env,
            )
    return matrix


def measure_pair_bandwidth_bidirectional(
    gcd_a: int,
    gcd_b: int,
    *,
    size: int = BANDWIDTH_TRANSFER_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    env: SimEnvironment | None = None,
) -> float:
    """Bidirectional bandwidth: simultaneous peer copies both ways.

    The p2pBandwidthLatencyTest's second matrix mode.  Each GCD's SDMA
    engines serve one direction, so with engines per direction the two
    copies overlap fully and the total approaches twice the
    unidirectional SDMA plateau.
    """
    if gcd_a == gcd_b:
        raise BenchmarkError("bidirectional test requires distinct GCDs")
    hip = Session(topology, calibration=calibration, env=env).hip
    hip.enable_all_peer_access()

    def run() -> Generator:
        a_src = hip.malloc(size, device=gcd_a)
        a_dst = hip.malloc(size, device=gcd_a)
        b_src = hip.malloc(size, device=gcd_b)
        b_dst = hip.malloc(size, device=gcd_b)
        stream_a = hip.stream_create(device=gcd_a)
        stream_b = hip.stream_create(device=gcd_b)
        t0 = hip.now
        done_ab = hip.memcpy_peer_async(b_dst, gcd_b, a_src, gcd_a, size, stream_a)
        done_ba = hip.memcpy_peer_async(a_dst, gcd_a, b_src, gcd_b, size, stream_b)
        yield hip.engine.all_of([done_ab, done_ba])
        return 2 * size / (hip.now - t0)

    return hip.run(run())


def matrix_points(
    *,
    latency_repetitions: int = 3,
    size: int = BANDWIDTH_TRANSFER_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    experiment_id: str = "fig06",
) -> list[SimPoint]:
    """Fig. 6's measured panels (b, c) as independent per-pair points.

    Panel (a) — hop counts — is a pure graph query and is computed
    during merge rather than dispatched as work.
    """
    node_topology = resolve_default_topology(topology)
    indices = [g.index for g in node_topology.gcds()]
    points = []
    for src in indices:
        for dst in indices:
            if src == dst:
                continue
            points.append(
                SimPoint.make(
                    experiment_id,
                    f"latency/{src}-{dst}",
                    "repro.bench_suites.p2p_matrix:measure_pair_latency",
                    src_gcd=src,
                    dst_gcd=dst,
                    repetitions=latency_repetitions,
                    topology=node_topology,
                    calibration=calibration,
                )
            )
    for src in indices:
        for dst in indices:
            if src == dst:
                continue
            points.append(
                SimPoint.make(
                    experiment_id,
                    f"bandwidth/{src}-{dst}",
                    "repro.bench_suites.p2p_matrix:measure_pair_bandwidth",
                    src_gcd=src,
                    dst_gcd=dst,
                    size=size,
                    topology=node_topology,
                    calibration=calibration,
                )
            )
    return points


def full_experiment(
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """All three Fig. 6 panels in one result."""
    node_topology = resolve_default_topology(topology)
    points = matrix_points(topology=node_topology, calibration=calibration)
    outputs = execute_points(points, runner)
    return matrix_result(points, outputs, topology=node_topology)


def matrix_result(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    *,
    topology: NodeTopology | None = None,
) -> ExperimentResult:
    """Assemble the Fig. 6 result: panel (a) from the topology graph,
    panels (b, c) from point outputs (in order)."""
    node_topology = resolve_default_topology(topology)
    result = ExperimentResult("fig06", "p2pBandwidthLatencyTest matrices")
    for (src, dst), hops in hop_matrix(node_topology).items():
        if src != dst:
            result.add(src * 8 + dst, float(hops), "hops", panel="a", src=src, dst=dst)
    for point, value in zip(points, outputs):
        kwargs = point.kwargs
        src, dst = kwargs["src_gcd"], kwargs["dst_gcd"]
        if point.label.startswith("latency/"):
            result.add(src * 8 + dst, value, "s", panel="b", src=src, dst=dst)
        else:
            result.add(src * 8 + dst, value, "B/s", panel="c", src=src, dst=dst)
    return result

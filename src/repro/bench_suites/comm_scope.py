"""CommScope-style microbenchmarks (Pearson et al. [12]).

Host-to-device bandwidth sweeps for every interface of Table I, the
NUMA-to-GPU placement probe of §IV-B, and the peer-copy sweep of
Fig. 7.  Every measurement builds a *fresh* simulated node so runs are
independent and deterministic.
"""

from __future__ import annotations

from typing import Generator, Sequence

from ..config import SimEnvironment
from ..core.calibration import CalibrationProfile
from ..core.experiment import ExperimentResult
from ..core.sweep import COMM_SCOPE_H2D, COMM_SCOPE_P2P
from ..errors import BenchmarkError
from ..hip.enums import HostMallocFlags
from ..hip.runtime import HipRuntime
from ..memory.placement import ExplicitNumaPolicy
from ..runner import SimPoint, SweepRunner, execute_points
from ..session import Session
from ..topology.node import NodeTopology
from ..topology.context import resolve_default as resolve_default_topology

#: The four host-to-device interfaces of Fig. 2/3.
H2D_INTERFACES = (
    "pageable_memcpy",
    "pinned_memcpy",
    "managed_zerocopy",
    "managed_migration",
)


def _fresh_runtime(
    interface: str,
    topology: NodeTopology | None,
    calibration: CalibrationProfile | None,
) -> HipRuntime:
    session = Session(
        topology,
        calibration=calibration,
        xnack_enabled=(interface == "managed_migration"),
    )
    return session.hip


def measure_h2d(
    interface: str,
    size: int,
    *,
    gcd: int = 0,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """One host-to-device bandwidth point (bytes/s)."""
    if interface not in H2D_INTERFACES:
        raise BenchmarkError(f"unknown interface {interface!r}")
    if size <= 0:
        raise BenchmarkError("transfer size must be positive")
    hip = _fresh_runtime(interface, topology, calibration)
    hip.set_device(gcd)

    def run() -> Generator:
        dst = hip.malloc(size)
        if interface == "pageable_memcpy":
            src = hip.pageable_malloc(
                size, numa_index=hip.node.topology.numa_of_gcd(gcd)
            )
            t0 = hip.now
            yield from hip.memcpy(dst, src)
        elif interface == "pinned_memcpy":
            src = hip.host_malloc(size, HostMallocFlags.NON_COHERENT)
            t0 = hip.now
            yield from hip.memcpy(dst, src)
        else:
            src = hip.malloc_managed(size)
            t0 = hip.now
            yield hip.launch_stream_copy(dst, src)
        return size / (hip.now - t0)

    return hip.run(run())


def h2d_points(
    interfaces: Sequence[str] = H2D_INTERFACES,
    sizes: Sequence[int] | None = None,
    *,
    gcd: int = 0,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    experiment_id: str = "fig03",
) -> list[SimPoint]:
    """The Fig. 3 sweep decomposed into independent sim points."""
    if sizes is None:
        sizes = COMM_SCOPE_H2D.sizes()
    return [
        SimPoint.make(
            experiment_id,
            f"h2d/{interface}/{size}",
            "repro.bench_suites.comm_scope:measure_h2d",
            interface=interface,
            size=size,
            gcd=gcd,
            topology=topology,
            calibration=calibration,
        )
        for interface in interfaces
        for size in sizes
    ]


def h2d_sweep(
    interfaces: Sequence[str] = H2D_INTERFACES,
    sizes: Sequence[int] | None = None,
    *,
    gcd: int = 0,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """The Fig. 3 sweep: bandwidth vs size for each interface."""
    points = h2d_points(
        interfaces, sizes, gcd=gcd, topology=topology, calibration=calibration
    )
    return h2d_result(points, execute_points(points, runner))


def h2d_result(points: Sequence[SimPoint], outputs: Sequence[float]) -> ExperimentResult:
    """Assemble the Fig. 3 sweep result from point outputs (in order)."""
    result = ExperimentResult(
        "fig03", "Host-to-device bandwidth vs transfer size (CommScope)"
    )
    for point, bandwidth in zip(points, outputs):
        kwargs = point.kwargs
        result.add(
            kwargs["size"], bandwidth, "B/s", interface=kwargs["interface"]
        )
    return result


def measure_numa_to_gpu(
    gcd: int,
    numa_index: int,
    size: int,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """Pinned H2D bandwidth with forced NUMA placement (§IV-B probe)."""
    hip = _fresh_runtime("pinned_memcpy", topology, calibration)
    hip.set_device(gcd)

    def run() -> Generator:
        src = hip.host_malloc(
            size,
            HostMallocFlags.NON_COHERENT | HostMallocFlags.NUMA_USER,
            policy=ExplicitNumaPolicy(numa_index),
        )
        dst = hip.malloc(size)
        t0 = hip.now
        yield from hip.memcpy(dst, src)
        return size / (hip.now - t0)

    return hip.run(run())


def numa_to_gpu_matrix(
    size: int,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> ExperimentResult:
    """All (GCD, NUMA) placements — flat per the paper's finding."""
    node_topology = resolve_default_topology(topology)
    result = ExperimentResult(
        "numa_probe", "Pinned H2D bandwidth per (GCD, NUMA) placement"
    )
    for gcd_info in node_topology.gcds():
        for numa in node_topology.numa_domains():
            bandwidth = measure_numa_to_gpu(
                gcd_info.index,
                numa.index,
                size,
                topology=node_topology,
                calibration=calibration,
            )
            result.add(
                size,
                bandwidth,
                "B/s",
                gcd=gcd_info.index,
                numa=numa.index,
                local=(node_topology.numa_of_gcd(gcd_info.index) == numa.index),
            )
    return result


def measure_peer_copy(
    src_gcd: int,
    dst_gcd: int,
    size: int,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    env: SimEnvironment | None = None,
) -> float:
    """One hipMemcpyPeer bandwidth point (bytes/s)."""
    hip = Session(topology, calibration=calibration, env=env).hip

    def run() -> Generator:
        src = hip.malloc(size, device=src_gcd)
        dst = hip.malloc(size, device=dst_gcd)
        t0 = hip.now
        yield from hip.memcpy_peer(dst, dst_gcd, src, src_gcd)
        return size / (hip.now - t0)

    return hip.run(run())


def peer_points(
    src_gcd: int = 0,
    dst_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    env: SimEnvironment | None = None,
    experiment_id: str = "fig07",
) -> list[SimPoint]:
    """The Fig. 7 sweep decomposed into independent sim points."""
    if sizes is None:
        sizes = COMM_SCOPE_P2P.sizes()
    return [
        SimPoint.make(
            experiment_id,
            f"peer/{src_gcd}-{dst}/{size}",
            "repro.bench_suites.comm_scope:measure_peer_copy",
            src_gcd=src_gcd,
            dst_gcd=dst,
            size=size,
            topology=topology,
            calibration=calibration,
            env=env,
        )
        for dst in dst_gcds
        for size in sizes
    ]


def peer_sweep(
    src_gcd: int = 0,
    dst_gcds: Sequence[int] = (1, 2, 6),
    sizes: Sequence[int] | None = None,
    *,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    env: SimEnvironment | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """The Fig. 7 sweep: GCD0 → adjacent GCDs, 256 B to 8 GB."""
    points = peer_points(
        src_gcd,
        dst_gcds,
        sizes,
        topology=topology,
        calibration=calibration,
        env=env,
    )
    return peer_result(points, execute_points(points, runner), src_gcd=src_gcd)


def peer_result(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    *,
    src_gcd: int = 0,
) -> ExperimentResult:
    """Assemble the Fig. 7 sweep result from point outputs (in order)."""
    result = ExperimentResult(
        "fig07", f"hipMemcpyPeer bandwidth from GCD{src_gcd} (CommScope)"
    )
    for point, bandwidth in zip(points, outputs):
        kwargs = point.kwargs
        result.add(kwargs["size"], bandwidth, "B/s", dst=kwargs["dst_gcd"])
    return result

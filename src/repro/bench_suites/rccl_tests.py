"""rccl-tests: RCCL collective latency, one CPU thread per GPU.

Mirrors the rccl-tests harness the paper uses for Fig. 11/12: a
communicator over GCDs 0..n-1, warm-up iterations, then timed
iterations of one collective at a fixed message size.
"""

from __future__ import annotations

from typing import Sequence

from ..core.calibration import CalibrationProfile
from ..core.experiment import ExperimentResult
from ..core.sweep import OSU_COLLECTIVE_BYTES, PARTNER_COUNTS
from ..errors import BenchmarkError
from ..rccl.collectives import RCCL_COLLECTIVES
from ..runner import SimPoint, SweepRunner, execute_points
from ..session import Session
from ..topology.node import NodeTopology

ITERATIONS = 3
WARMUP = 1


def rccl_collective_latency(
    collective: str,
    num_threads: int,
    *,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
    iterations: int = ITERATIONS,
    warmup: int = WARMUP,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
) -> float:
    """Average latency (seconds) of one RCCL collective.

    ``num_threads`` CPU threads drive GCDs 0..n-1, one GPU per thread,
    all in a single communicator — the rccl-tests setup of §VI.
    """
    if collective not in RCCL_COLLECTIVES:
        raise BenchmarkError(
            f"unknown collective {collective!r}; known: "
            f"{sorted(RCCL_COLLECTIVES)}"
        )
    if num_threads < 2:
        raise BenchmarkError("rccl-tests needs at least two threads")
    session = Session(topology, calibration=calibration)
    node = session.node
    comm = session.rccl_communicator(list(range(num_threads)))
    # Dispatch through the communicator method (not the registry
    # function) so the communicator's selected algorithm — explicit,
    # ambient (--algorithm) or auto — steers allreduce/broadcast.
    fn = getattr(comm, collective)

    def harness():
        for _ in range(warmup):
            yield from fn(message_bytes)
        total = 0.0
        for _ in range(iterations):
            t0 = node.now
            yield from fn(message_bytes)
            total += node.now - t0
        return total / iterations

    return node.engine.run_process(harness(), name=f"rccl-{collective}")


def rccl_points(
    collectives: Sequence[str] | None = None,
    thread_counts: Sequence[int] = PARTNER_COUNTS,
    *,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    experiment_id: str = "fig12",
) -> list[SimPoint]:
    """The Fig. 12 grid decomposed into independent sim points."""
    if collectives is None:
        collectives = sorted(RCCL_COLLECTIVES)
    return [
        SimPoint.make(
            experiment_id,
            f"rccl/{collective}/{threads}",
            "repro.bench_suites.rccl_tests:rccl_collective_latency",
            collective=collective,
            num_threads=threads,
            message_bytes=message_bytes,
            topology=topology,
            calibration=calibration,
        )
        for collective in collectives
        for threads in thread_counts
    ]


def rccl_latency_sweep(
    collectives: Sequence[str] | None = None,
    thread_counts: Sequence[int] = PARTNER_COUNTS,
    *,
    message_bytes: int = OSU_COLLECTIVE_BYTES,
    topology: NodeTopology | None = None,
    calibration: CalibrationProfile | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Fig. 12: five collectives × 2–8 threads."""
    points = rccl_points(
        collectives,
        thread_counts,
        message_bytes=message_bytes,
        topology=topology,
        calibration=calibration,
    )
    return rccl_result(points, execute_points(points, runner))


def rccl_result(
    points: Sequence[SimPoint],
    outputs: Sequence[float],
    *,
    experiment_id: str = "fig12",
    title: str = "RCCL collective latency (1 MiB)",
) -> ExperimentResult:
    """Assemble the Fig. 12 grid result from point outputs (in order)."""
    result = ExperimentResult(experiment_id, title)
    for point, latency in zip(points, outputs):
        kwargs = point.kwargs
        result.add(
            kwargs["num_threads"],
            latency,
            "s",
            collective=kwargs["collective"],
            partners=kwargs["num_threads"],
            library="RCCL",
        )
    return result

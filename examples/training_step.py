#!/usr/bin/env python3
"""Domain example: one data-parallel training step on the MI250X node.

Sweeps worker placement, input-loading interface and allreduce library
for a training step (batch load → compute → gradient allreduce) and
prints the per-phase breakdown — the §VI AI workload, configured by
the paper's findings.

Run:
    python examples/training_step.py [batch_mib] [gradient_kib]
"""

import sys

from repro.apps.data_parallel import TrainStepConfig, run_train_step
from repro.units import KiB, MiB


def main() -> None:
    batch = (int(sys.argv[1]) if len(sys.argv) > 1 else 64) * MiB
    gradient = (int(sys.argv[2]) if len(sys.argv) > 2 else 1024) * KiB

    print(
        f"Training step: {batch // MiB} MiB batch/worker, "
        f"{gradient // KiB} KiB gradient, 2 ms compute\n"
    )
    header = (
        f"{'workers':>7s} {'placement':>10s} {'loader':>15s} {'library':>8s}"
        f" {'load':>9s} {'allreduce':>10s} {'total':>9s}"
    )
    print(header)
    best = None
    for workers in (4, 8):
        for placement in ("spread", "same_gpu"):
            for loader in ("pinned_memcpy", "managed_xnack"):
                for library in ("rccl", "mpi"):
                    config = TrainStepConfig(
                        num_workers=workers,
                        placement_strategy=placement,  # type: ignore[arg-type]
                        loader=loader,  # type: ignore[arg-type]
                        library=library,  # type: ignore[arg-type]
                        batch_bytes=batch,
                        gradient_bytes=gradient,
                    )
                    result = run_train_step(config)
                    print(
                        f"{workers:>7d} {placement:>10s} {loader:>15s} "
                        f"{library:>8s} {result.load_seconds * 1e3:8.2f}ms "
                        f"{result.allreduce_seconds * 1e6:8.1f}us "
                        f"{result.total_seconds * 1e3:8.2f}ms"
                    )
                    key = (workers, placement, loader, library)
                    if workers == 8 and (
                        best is None or result.total_seconds < best[1]
                    ):
                        best = (key, result.total_seconds)

    assert best is not None
    (workers, placement, loader, library), total = best
    print(
        f"\nBest 8-worker configuration: {placement} placement, {loader}, "
        f"{library} ({total * 1e3:.2f} ms/step)"
    )
    print(
        "Takeaways (all from the paper): spread workers across packages\n"
        "(shared NUMA ports), load via pinned copies (XNACK migration is\n"
        "10x slower), allreduce with RCCL (MPI pays pointer-mapping\n"
        "overhead per message)."
    )


if __name__ == "__main__":
    main()

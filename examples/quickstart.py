#!/usr/bin/env python3
"""Quickstart: measure the headline numbers of the paper in ~a second.

Builds the Frontier-style MI250X node (Fig. 1), runs one measurement
per data-movement interface, and prints the measured value next to the
number the paper reports.

Run:
    python examples/quickstart.py
"""

import repro
from repro.bench_suites import comm_scope, p2p_matrix, stream
from repro.units import GiB, MiB, to_gbps, to_us


def main() -> None:
    print(repro.Session(topology="mi250x").topology.describe())
    print()

    print("=== CPU-GPU data movement (paper §IV) ===")
    rows = [
        ("pinned hipMemcpy H2D", comm_scope.measure_h2d("pinned_memcpy", 1 * GiB), 28.3),
        ("managed zero-copy H2D", comm_scope.measure_h2d("managed_zerocopy", 1 * GiB), 25.5),
        ("managed page migration", comm_scope.measure_h2d("managed_migration", 256 * MiB), 2.8),
    ]
    for label, rate, paper in rows:
        print(f"  {label:28s} {to_gbps(rate):7.1f} GB/s   (paper: {paper} GB/s)")

    print()
    print("=== GPU-GPU peer-to-peer (paper §V) ===")
    print(
        f"  {'local HBM STREAM copy':28s} "
        f"{to_gbps(stream.local_stream_copy(0, 1 * GiB)):7.0f} GB/s   (paper: 1400 GB/s)"
    )
    for dst, tier, paper in ((2, "single", 37.75), (6, "dual", 50.0), (1, "quad", 50.0)):
        rate = comm_scope.measure_peer_copy(0, dst, 1 * GiB)
        print(
            f"  hipMemcpyPeer 0->{dst} ({tier:6s})   "
            f"{to_gbps(rate):7.1f} GB/s   (paper: ~{paper} GB/s, SDMA-capped)"
        )
    lat_single = p2p_matrix.measure_pair_latency(0, 2)
    lat_detour = p2p_matrix.measure_pair_latency(1, 7)
    print(f"  {'p2p latency 0-2 (single)':28s} {to_us(lat_single):7.1f} us     (paper: 8.7 us)")
    print(f"  {'p2p latency 1-7 (3-hop)':28s} {to_us(lat_detour):7.1f} us     (paper: 17.8-18.2 us)")

    print()
    print("=== Collectives (paper §VI) ===")
    from repro.bench_suites import osu, rccl_tests

    for name in ("allreduce", "broadcast"):
        mpi = osu.osu_collective_latency(name, 8)
        rccl = rccl_tests.rccl_collective_latency(name, 8)
        winner = "RCCL" if rccl < mpi else "MPI"
        print(
            f"  {name:14s} 8 GCDs, 1 MiB:  MPI {to_us(mpi):6.1f} us,  "
            f"RCCL {to_us(rccl):6.1f} us   -> {winner} wins"
        )
    print(
        "  (paper: RCCL wins every collective except Broadcast)"
    )


if __name__ == "__main__":
    main()

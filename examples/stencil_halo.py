#!/usr/bin/env python3
"""Domain example: halo-exchange stencil across the eight GCDs.

A CFD-style 1-D decomposition updates slabs and exchanges halos every
iteration.  This example sweeps decomposition orders and halo sizes,
showing (a) the emergent ring-friendliness of the Fig. 1 mesh, (b) the
cost of a package-interleaving order, and (c) when hipMemcpyPeer vs
zero-copy kernel exchange matters.

Run:
    python examples/stencil_halo.py [halo_mib]
"""

import sys

from repro.apps.stencil import (
    TOPOLOGY_AWARE_ORDER,
    StencilConfig,
    order_comparison,
    run_stencil,
)
from repro.units import MiB


def main() -> None:
    halo = (int(sys.argv[1]) if len(sys.argv) > 1 else 8) * MiB

    print(f"Stencil: 8 slabs of 256 MiB, halos of {halo // MiB} MiB, 4 iterations\n")
    print("--- decomposition order ---")
    results = order_comparison(halo_bytes=halo)
    baseline = results["topology-aware ring"].exchange_seconds
    for label, result in results.items():
        delta = result.exchange_seconds / baseline - 1
        print(
            f"  {label:26s} exchange {result.exchange_seconds * 1e3:7.3f} ms"
            f"  ({delta:+.0%} vs ring)   total {result.total_seconds * 1e3:7.2f} ms"
        )
    print(
        "\n  -> the mesh serves any package-contiguous ring at full\n"
        "     speed; interleaving packages forces routed exchanges that\n"
        "     contend on shared single links."
    )

    print("\n--- exchange interface (topology-aware order) ---")
    for exchange in ("kernel", "memcpy"):
        result = run_stencil(
            StencilConfig(
                gcd_order=TOPOLOGY_AWARE_ORDER,
                halo_bytes=halo,
                exchange=exchange,  # type: ignore[arg-type]
            )
        )
        print(
            f"  {exchange:8s} exchange {result.exchange_seconds * 1e3:7.3f} ms"
            f"  ({result.exchange_fraction:.0%} of step time)"
        )
    print(
        "\n  -> zero-copy kernels beat hipMemcpyPeer on the halo path\n"
        "     (44 vs 37.75 GB/s on single links, paper §V); prefer the\n"
        "     engine path only when overlap with compute is needed."
    )


if __name__ == "__main__":
    main()

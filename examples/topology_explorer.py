#!/usr/bin/env python3
"""Topology explorer: routes, peaks and what-if topologies.

Walks the Fig. 1 Infinity Fabric mesh: prints every GCD pair's
shortest and bandwidth-maximizing route with its theoretical and
*achievable* bandwidth (SDMA vs kernel paths), then contrasts the real
sparse mesh against a hypothetical fully-connected node to show what
the extra links would — and would not — buy.

Run:
    python examples/topology_explorer.py [src_gcd]
"""

import sys

from repro.bench_suites.p2p_matrix import measure_pair_bandwidth
from repro.bench_suites.stream import direct_p2p_read
from repro.core.bounds import pair_peak_unidirectional
from repro.topology.presets import dense_hive_node, frontier_node
from repro.topology.routing import bandwidth_maximizing_path, shortest_path
from repro.units import GiB, to_gbps


def explore(topology, src: int) -> None:
    print(f"Routes from GCD{src} on {topology.name!r}:")
    print(
        f"{'dst':>4s} {'shortest':>22s} {'bw-max route':>26s} "
        f"{'peak':>8s} {'SDMA':>7s} {'kernel':>8s}"
    )
    for info in topology.gcds():
        dst = info.index
        if dst == src:
            continue
        short = shortest_path(topology, src, dst)
        wide = bandwidth_maximizing_path(topology, src, dst)
        peak = pair_peak_unidirectional(topology, src, dst)
        sdma = measure_pair_bandwidth(src, dst, size=1 * GiB, topology=topology)
        kernel = direct_p2p_read(src, dst, 1 * GiB, topology=topology)
        marker = "  <- detour" if wide.num_hops > short.num_hops else ""
        print(
            f"{dst:>4d} {short.describe():>22s} {wide.describe():>26s} "
            f"{to_gbps(peak):>6.0f}  {to_gbps(sdma):>6.1f} "
            f"{to_gbps(kernel):>7.1f}{marker}"
        )


def main() -> None:
    src = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    frontier = frontier_node()
    print(frontier.describe())
    print()
    explore(frontier, src)

    print()
    print("What-if: fully-connected 'dense hive' node (every GCD pair")
    print("gets a direct single link; packages keep quad links):")
    dense = dense_hive_node()
    explore(dense, src)
    print()
    print(
        "Observation: extra links remove routed detours and lift the\n"
        "kernel path on previously-indirect pairs, but every SDMA copy\n"
        "is still pinned at the ~50 GB/s engine ceiling — topology\n"
        "alone cannot fix an engine-bound interface (paper §V-A2)."
    )


if __name__ == "__main__":
    main()

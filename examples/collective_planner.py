#!/usr/bin/env python3
"""Collective planner: choose the library and GPU set for collectives.

Scenario: a data-parallel training step allreduces a gradient buffer
across k GCDs every iteration (the AI workload of the paper's §VI).
The planner measures MPI vs RCCL for the requested collective across
GPU counts, flags the odd-subset penalty (the Fig. 12 effect), and
prints a plan.

Run:
    python examples/collective_planner.py [collective] [message_kib]
        collective:  allreduce | reduce | broadcast | reduce_scatter |
                     allgather   (default allreduce)
        message_kib: message size in KiB (default 1024 = the paper's 1 MiB)
"""

import sys

import repro
from repro.bench_suites.osu import osu_collective_latency
from repro.bench_suites.rccl_tests import rccl_collective_latency
from repro.core.bounds import collective_latency_bound
from repro.units import KiB, to_us


def main() -> None:
    collective = sys.argv[1] if len(sys.argv) > 1 else "allreduce"
    message = (int(sys.argv[2]) if len(sys.argv) > 2 else 1024) * KiB

    bound = collective_latency_bound(collective)
    print(
        f"Planning {collective} of {message // KiB} KiB "
        f"(analytical lower bound: {to_us(bound.bound):.1f} us)\n"
    )
    print(f"{'GCDs':>5s} {'MPI [us]':>10s} {'RCCL [us]':>10s} {'winner':>8s}  ring")
    plan = {}
    for partners in range(2, 9):
        mpi = osu_collective_latency(collective, partners, message_bytes=message)
        rccl = rccl_collective_latency(collective, partners, message_bytes=message)
        comm = repro.Session().rccl_communicator(list(range(partners)))
        ring_note = comm.ring.describe()
        if comm.ring.num_relayed:
            ring_note += f"  ({comm.ring.num_relayed} relayed segment)"
        winner = "RCCL" if rccl < mpi else "MPI"
        plan[partners] = (winner, min(mpi, rccl))
        print(
            f"{partners:>5d} {to_us(mpi):>10.1f} {to_us(rccl):>10.1f} "
            f"{winner:>8s}  {ring_note}"
        )

    print("\nPlan:")
    best_count = min(plan, key=lambda k: plan[k][1] * 1)  # lowest latency
    print(
        f"  - library per GPU count: "
        + ", ".join(f"{k}:{v[0]}" for k, v in plan.items())
    )
    seven, eight = plan[7][1], plan[8][1]
    if eight < seven:
        print(
            "  - avoid 7-GCD communicators: the RCCL ring needs a "
            f"relayed segment there; 8 GCDs is {to_us(seven - eight):.0f} us "
            "faster despite the extra rank (paper Fig. 12)."
        )
    print(
        f"  - latency-optimal configuration measured: {best_count} GCD(s) "
        f"with {plan[best_count][0]} ({to_us(plan[best_count][1]):.1f} us)"
    )


if __name__ == "__main__":
    main()

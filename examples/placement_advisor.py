#!/usr/bin/env python3
"""Placement advisor: pick the memory strategy for a CPU-GPU workload.

The scenario the paper's intro motivates: a scientific application
streams a working set from host memory into GPU kernels every
iteration.  Which of Table I's strategies should it use — explicit
pinned copies, zero-copy access, managed memory with XNACK migration,
or managed memory with an explicit prefetch — and on which GCDs should
a multi-GPU run place its workers?

The advisor *measures* each option on the simulated node and prints a
recommendation with the evidence.

Run:
    python examples/placement_advisor.py [working_set_mb] [touches]
        working_set_mb: per-iteration working set (default 256)
        touches:        GPU passes over the data per transfer (default 1)
"""

import sys

import repro
from repro.config import spread_placement, same_gpu_placement
from repro.hip.enums import HostMallocFlags
from repro.bench_suites.stream import multi_gpu_cpu_stream
from repro.units import MiB, to_gbps


def measure_strategy(strategy: str, working_set: int, touches: int) -> float:
    """End-to-end time for one iteration: move + ``touches`` GPU passes."""
    session = repro.Session(xnack_enabled=(strategy == "managed_xnack"))
    hip = session.hip
    hip.set_device(0)

    def run():
        dev_out = hip.malloc(working_set, label="output")
        if strategy == "pinned_memcpy":
            host = hip.host_malloc(working_set, HostMallocFlags.NON_COHERENT)
            staging = hip.malloc(working_set, label="staging")
            t0 = hip.now
            yield from hip.memcpy(staging, host)
            for _ in range(touches):
                yield hip.launch_stream_copy(dev_out, staging, device=0)
        elif strategy == "zero_copy":
            host = hip.host_malloc(working_set)
            t0 = hip.now
            for _ in range(touches):
                yield hip.launch_stream_copy(dev_out, host, device=0)
        elif strategy == "managed_xnack":
            managed = hip.malloc_managed(working_set)
            t0 = hip.now
            for _ in range(touches):
                yield hip.launch_stream_copy(dev_out, managed, device=0)
        elif strategy == "managed_prefetch":
            managed = hip.malloc_managed(working_set)
            t0 = hip.now
            yield from hip.mem_prefetch(managed, device=0)
            for _ in range(touches):
                yield hip.launch_stream_copy(dev_out, managed, device=0)
        else:
            raise ValueError(strategy)
        return hip.now - t0

    return hip.run(run())


def main() -> None:
    working_set = int(sys.argv[1]) * MiB if len(sys.argv) > 1 else 256 * MiB
    touches = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    print(
        f"Scenario: stream {working_set // MiB} MiB from host, "
        f"{touches} GPU pass(es) per iteration\n"
    )
    strategies = {
        "pinned_memcpy": "pinned + hipMemcpy + local access",
        "zero_copy": "pinned, zero-copy kernel access",
        "managed_xnack": "hipMallocManaged + HSA_XNACK=1 (fault migration)",
        "managed_prefetch": "hipMallocManaged + hipMemPrefetchAsync",
    }
    timings = {}
    for key, label in strategies.items():
        timings[key] = measure_strategy(key, working_set, touches)
        effective = touches * working_set / timings[key]
        print(
            f"  {label:48s} {timings[key] * 1e3:8.2f} ms  "
            f"({to_gbps(effective):6.1f} GB/s effective)"
        )

    best = min(timings, key=timings.get)
    print(f"\n>>> recommended strategy: {strategies[best]}")
    if best == "zero_copy" and touches > 1:
        print(
            "    note: repeated passes over coherent zero-copy memory "
            "re-cross the fabric every pass (GPU caching is disabled "
            "for coherent memory on MI250X, paper §II-C)."
        )

    print("\nMulti-GPU placement (paper §IV-C): total CPU-GPU bandwidth")
    for count in (2, 4):
        spread = multi_gpu_cpu_stream(spread_placement(count), working_set)
        packed = multi_gpu_cpu_stream(same_gpu_placement(count), working_set)
        print(
            f"  {count} GCDs: spread {to_gbps(spread):6.1f} GB/s   "
            f"same-GPU-first {to_gbps(packed):6.1f} GB/s"
        )
    print(
        ">>> place one worker per physical GPU before doubling up: "
        "both GCDs of a package share one NUMA IF port."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Porting workflow: hipify a CUDA benchmark, then run its HIP twin.

The paper ports Nvidia's p2pBandwidthLatencyTest to HIP with the
``hipify`` tool (§II-B, §III).  This example replays that workflow on
the simulator: it translates an embedded CUDA source of the latency
loop with :mod:`repro.hip.hipify`, prints the translation summary, and
then executes the equivalent measurement through the simulated HIP
runtime — producing the Fig. 6b latency classes.

Run:
    python examples/port_benchmark.py
"""

from repro.bench_suites.p2p_matrix import measure_pair_latency
from repro.hip.hipify import hipify_source
from repro.units import to_us

CUDA_LATENCY_LOOP = """
#include <cuda_runtime.h>

// p2pBandwidthLatencyTest latency kernel loop (abridged)
float measure_latency(int src, int dst, void *src_buf, void *dst_buf,
                      cudaStream_t stream, int repeat) {
    cudaSetDevice(src);
    cudaDeviceEnablePeerAccess(dst, 0);
    cudaEvent_t start, stop;
    cudaEventCreate(&start);
    cudaEventCreate(&stop);
    cudaEventRecord(start, stream);
    for (int r = 0; r < repeat; r++)
        cudaMemcpyPeerAsync(dst_buf, dst, src_buf, src, 16, stream);
    cudaEventRecord(stop, stream);
    cudaStreamSynchronize(stream);
    float ms;
    cudaEventElapsedTime(&ms, start, stop);
    cudaEventDestroy(start);
    cudaEventDestroy(stop);
    return ms * 1000.0f / repeat;  // microseconds per copy
}
"""


def main() -> None:
    print("=== step 1: hipify the CUDA source ===")
    result = hipify_source(CUDA_LATENCY_LOOP)
    print(result.summary())
    assert result.clean, "translation left CUDA identifiers behind"
    print("\ntranslated excerpt:")
    for line in result.translated.splitlines():
        if "hip" in line:
            print(f"  {line.strip()}")

    print("\n=== step 2: run the ported measurement on the simulator ===")
    cases = [
        (0, 2, "single link"),
        (0, 1, "quad link (same GPU)"),
        (1, 7, "3-hop routed pair"),
    ]
    for src, dst, label in cases:
        latency = measure_pair_latency(src, dst)
        print(f"  GCD{src}->GCD{dst} ({label:22s}): {to_us(latency):5.1f} us")
    print(
        "\nSame classes as the paper's Fig. 6b: <10 us on single links,\n"
        "10.5-10.8 us within a package, ~18 us on the detour pairs."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Trace timeline: *why* same-GPU placement doesn't scale.

Runs the dual-GCD STREAM experiment of Fig. 4 twice with tracing
enabled, prints the resulting timelines, and shows the NUMA-port
utilization that explains the flat same-GPU result.

Run:
    python examples/trace_timeline.py
"""

from repro.api import ObsConfig, Session
from repro.units import MiB, to_gbps


def traced_run(placement, size=256 * MiB):
    session = Session(obs=ObsConfig(trace=True, spans=True))
    node = session.node
    hip = session.hip

    def run():
        buffers = {}
        for gcd in placement:
            hip.set_device(gcd)
            a = hip.host_malloc(size, device=gcd, label=f"a{gcd}")
            b = hip.host_malloc(size, device=gcd, label=f"b{gcd}")
            buffers[gcd] = (a, b)
        t0 = hip.now
        # Sample the port share shortly after both kernels start.
        events = [
            hip.launch_stream_copy(b, a, device=gcd)
            for gcd, (a, b) in buffers.items()
        ]
        yield hip.engine.timeout(50e-6)
        port = node.cpu.port_channel(node.topology.numa_of_gcd(placement[0]))
        utilization = node.network.utilization(port)
        flows = [
            (flow.label, to_gbps(flow.rate))
            for flow in node.network.active_flows()
        ]
        yield hip.engine.all_of(events)
        total = len(placement) * 2 * size / (hip.now - t0)
        return total, utilization, flows

    total, utilization, flows = session.run(run())
    return session, node, total, utilization, flows


def main() -> None:
    for label, placement in (
        ("same GPU (GCD0 + GCD1)", [0, 1]),
        ("spread (GCD0 + GCD2)", [0, 2]),
    ):
        session, node, total, utilization, flows = traced_run(placement)
        print(f"=== {label} ===")
        print(f"total bidirectional bandwidth: {to_gbps(total):.1f} GB/s")
        print(
            f"NUMA0 Infinity Fabric port utilization while both kernels "
            f"run: {utilization:.0%}"
        )
        print("concurrent flows (label, allocated GB/s):")
        for flow_label, rate in flows:
            print(f"  {flow_label:28s} {rate:6.1f}")
        print("kernel timeline:")
        for record in node.tracer.records("kernel"):
            print(f"  {record.format()}")
        print("critical path (span blame — where the run's time went):")
        for line in session.explain(top=4).splitlines():
            print(f"  {line}")
        print()

    print(
        "Same-GPU: four flows squeeze through one 45 GB/s NUMA port\n"
        "(11.25 GB/s each).  Spread: each GCD has its own port, every\n"
        "flow runs at its 22.5 GB/s share — twice the total (Fig. 4)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Shadow mode: replay telemetry, measure drift, re-fit the model.

A digital twin is only useful while it still matches the machine it
shadows.  This example closes the loop without any hardware:

1. synthesize a telemetry stream from the Fig. 6 point-to-point sweep,
   recorded by a "machine" whose SDMA efficiency has silently dropped
   to 90% of the calibrated value (a firmware update, say);
2. shadow-replay it with the stock calibration and watch the per-link
   drift ledger light up;
3. auto-calibrate against the same stream and verify the fitted
   profile recovers the degraded constant — and that replaying under
   it drives drift back to ~zero.

Run:
    python examples/shadow_mode.py
"""

from repro.twin import fit_calibration, shadow_replay, synthesize_telemetry


def main() -> None:
    # --- 1. a stream from a machine that drifted away from the model.
    telemetry = synthesize_telemetry(
        "fig06", perturb={"sdma_xgmi_efficiency": 0.9}
    )
    print(f"telemetry: {telemetry.describe()}")
    print()

    # --- 2. shadow replay under the stock calibration.
    report = shadow_replay(telemetry, window=0.05)
    print("=== drift under the stock calibration ===")
    print(report.describe(top=4))
    print()

    # --- 3. fit the efficiency constants back from the stream.
    fit = fit_calibration(telemetry, fields=["sdma_xgmi_efficiency"])
    print("=== auto-calibration ===")
    print(fit.describe())
    fitted = fit.profile.sdma_xgmi_efficiency
    print(f"fitted sdma_xgmi_efficiency: {fitted:.6f}")
    print()

    # --- replaying under the fitted profile closes the loop.
    refit = shadow_replay(telemetry, calibration=fit.profile, window=0.05)
    print(
        f"max |drift|: {report.max_abs_drift:.3%} (stock) -> "
        f"{refit.max_abs_drift:.3%} (fitted)"
    )
    assert refit.max_abs_drift < report.max_abs_drift


if __name__ == "__main__":
    main()
